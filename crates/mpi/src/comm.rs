//! The communicator: tagged typed point-to-point messaging, collectives,
//! and communicator splitting, in the style of MPI — instrumented with
//! per-tag statistics, configurable receive deadlines, and deterministic
//! fault injection.

use std::any::Any;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use crate::fault::{ActiveFaults, FaultAction};
use crate::heartbeat::HeartbeatBoard;
use crate::stats::{tag_label, CommStats, INTERNAL_TAG};
use crate::trace::{RankTrace, Tracer};
use crate::universe::JobControl;

/// Reduction operators supported by [`Comm::reduce`] and friends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

impl ReduceOp {
    #[inline]
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

/// A message in flight. `src` is the *world* rank of the sender; matching
/// is on `(ctx, src, tag)`.
pub(crate) struct Envelope {
    ctx: u32,
    src: usize,
    tag: u32,
    /// Shallow payload size (`size_of_val`), for the byte counters.
    bytes: usize,
    payload: Box<dyn Any + Send>,
}

const TAG_BARRIER_UP: u32 = INTERNAL_TAG;
const TAG_BARRIER_DOWN: u32 = INTERNAL_TAG + 1;
const TAG_BCAST: u32 = INTERNAL_TAG + 2;
const TAG_REDUCE: u32 = INTERNAL_TAG + 3;
const TAG_GATHER: u32 = INTERNAL_TAG + 4;
const TAG_SCATTER: u32 = INTERNAL_TAG + 5;
const TAG_ALLTOALL: u32 = INTERNAL_TAG + 6;
const TAG_SPLIT: u32 = INTERNAL_TAG + 7;
/// Job-abort broadcast injected by the universe when a rank dies: any
/// rank that sees it parks itself with a [`Quiesced`] panic so the job
/// can tear down instead of hanging in a receive that will never match.
const TAG_ABORT: u32 = INTERNAL_TAG + 8;

/// Poll interval for blocked receives: each expiry emits one idle
/// heartbeat beacon and re-checks the job-abort flag.
const BEACON: Duration = Duration::from_millis(25);

/// Panic payload marking a rank parked by the job-abort broadcast — a
/// casualty of another rank's failure, not a culprit. The universe
/// recognizes it and excludes such ranks from failure attribution.
pub(crate) struct Quiesced;

/// Envelope carrying the job-abort broadcast from the universe on
/// behalf of dead rank `src`. Not counted in comm statistics and
/// filtered from teardown lint.
pub(crate) fn make_abort(src: usize) -> Envelope {
    Envelope {
        ctx: 0,
        src,
        tag: TAG_ABORT,
        bytes: 0,
        payload: Box::new(()),
    }
}

/// Error returned when a receive deadline expires. Carries enough of the
/// mailbox state to diagnose the mismatch that caused the stall.
#[derive(Debug, Clone)]
pub struct RecvTimeout {
    /// World rank that timed out.
    pub rank: usize,
    /// Communicator rank it was expecting a message from.
    pub src: usize,
    /// Tag(s) it was matching.
    pub tags: Vec<u32>,
    /// How long it waited.
    pub waited: Duration,
    /// `(source world rank, tag)` of every message sitting unmatched in
    /// the mailbox — the "leaked" traffic a mismatched tag leaves behind.
    pub pending: Vec<(usize, u32)>,
}

impl std::fmt::Display for RecvTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tags: Vec<String> = self.tags.iter().map(|t| tag_label(*t)).collect();
        write!(
            f,
            "recv deadline expired on rank {} after {:.3} s waiting for [{}] from rank {}",
            self.rank,
            self.waited.as_secs_f64(),
            tags.join(", "),
            self.src
        )?;
        if self.pending.is_empty() {
            write!(f, "; mailbox is empty")
        } else {
            let got: Vec<String> = self
                .pending
                .iter()
                .map(|(s, t)| format!("(src {}, {})", s, tag_label(*t)))
                .collect();
            write!(f, "; unmatched in mailbox: {}", got.join(", "))
        }
    }
}

impl std::error::Error for RecvTimeout {}

/// A received message whose payload has not been downcast yet, returned
/// by [`Comm::recv_match`] when receiving on several tags at once.
pub struct Message {
    env: Envelope,
}

impl Message {
    pub fn tag(&self) -> u32 {
        self.env.tag
    }

    /// World rank of the sender.
    pub fn src_world(&self) -> usize {
        self.env.src
    }

    /// Extract the payload.
    ///
    /// # Panics
    /// Panics if the payload is not a `T`.
    pub fn downcast<T: Send + 'static>(self) -> T {
        downcast(self.env)
    }
}

/// What one rank's endpoint knows at teardown — folded into the
/// job-wide [`crate::CommLint`] by the universe.
#[derive(Debug, Clone, Default)]
pub(crate) struct RankLint {
    /// `((src world rank, tag), count)` of unmatched messages left in
    /// the mailbox.
    pub leaked: Vec<((usize, u32), usize)>,
    /// Reorder-held messages never released by a subsequent send.
    pub unreleased_reorders: usize,
    /// A receive deadline expired on this rank.
    pub timed_out: bool,
}

/// Per-thread endpoint shared by every communicator that lives on this
/// rank: the inbound channel, the stash of out-of-order messages, the
/// tracer, comm statistics, fault-injection state, and the context-id
/// allocator.
pub(crate) struct Endpoint {
    rx: Receiver<Envelope>,
    pending: VecDeque<Envelope>,
    pub(crate) tracer: Tracer,
    next_ctx: u32,
    stats: CommStats,
    /// Default deadline applied to every blocking receive (None = wait
    /// forever, like classic MPI).
    deadline: Option<Duration>,
    faults: Option<Arc<ActiveFaults>>,
    /// Messages held back by a reorder fault, keyed by destination
    /// world rank; released after the next send to that destination.
    held: Vec<(usize, Envelope)>,
    /// Per-(destination, tag) send sequence numbers for fault matching.
    send_seq: HashMap<(usize, u32), u64>,
    /// Set when a receive deadline expires; cleared again by the next
    /// successful receive, so at teardown it means "ended blocked"
    /// rather than "ever timed out" (a recovered retry is not an error).
    timed_out: bool,
    /// Shared liveness board: beats piggyback on sends/receives, idle
    /// beacons fire while blocked.
    board: Arc<HeartbeatBoard>,
    /// Job-wide abort flag set by the universe when any rank dies.
    ctl: Arc<JobControl>,
}

/// A communicator over a group of ranks.
///
/// Cheap to clone within a rank (shared endpoint). `Comm` is deliberately
/// *not* `Send`: like an `MPI_Comm`, it belongs to the rank that holds it.
pub struct Comm {
    endpoint: Rc<RefCell<Endpoint>>,
    senders: Arc<Vec<Sender<Envelope>>>,
    /// Context id distinguishing this communicator's traffic.
    ctx: u32,
    /// Map from communicator rank to world rank.
    group: Rc<Vec<usize>>,
    /// This process's rank within the group.
    rank: usize,
}

impl Comm {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new_world(
        world_rank: usize,
        rx: Receiver<Envelope>,
        senders: Arc<Vec<Sender<Envelope>>>,
        epoch: Instant,
        tracing: bool,
        deadline: Option<Duration>,
        faults: Option<Arc<ActiveFaults>>,
        board: Arc<HeartbeatBoard>,
        ctl: Arc<JobControl>,
    ) -> Self {
        let n = senders.len();
        let mut tracer = Tracer::new(world_rank, epoch);
        tracer.set_enabled(tracing);
        Comm {
            endpoint: Rc::new(RefCell::new(Endpoint {
                rx,
                pending: VecDeque::new(),
                tracer,
                next_ctx: 1,
                stats: CommStats::default(),
                deadline,
                faults,
                held: Vec::new(),
                send_seq: HashMap::new(),
                timed_out: false,
                board,
                ctl,
            })),
            senders,
            ctx: 0,
            group: Rc::new((0..n).collect()),
            rank: world_rank,
        }
    }

    /// Rank of this process within this communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in this communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// World rank of this process.
    #[inline]
    pub fn world_rank(&self) -> usize {
        self.group[self.rank]
    }

    /// Translate a rank of this communicator into a world rank.
    #[inline]
    pub fn translate(&self, rank: usize) -> usize {
        self.group[rank]
    }

    /// Seconds since the universe epoch.
    pub fn now(&self) -> f64 {
        self.endpoint.borrow().tracer.now()
    }

    /// Enable or disable activity tracing on this rank.
    pub fn set_tracing(&self, on: bool) {
        self.endpoint.borrow_mut().tracer.set_enabled(on);
    }

    /// Set the deadline applied to every blocking receive on this rank
    /// (including collectives). `None` waits forever. A plain
    /// [`Comm::recv`] whose deadline expires panics with a mailbox
    /// diagnostic instead of hanging; use [`Comm::recv_deadline`] for a
    /// recoverable error.
    pub fn set_default_deadline(&self, deadline: Option<Duration>) {
        self.endpoint.borrow_mut().deadline = deadline;
    }

    /// The deadline currently applied to blocking receives.
    pub fn default_deadline(&self) -> Option<Duration> {
        self.endpoint.borrow().deadline
    }

    /// Snapshot of this rank's per-tag communication counters.
    pub fn stats(&self) -> CommStats {
        self.endpoint.borrow().stats.clone()
    }

    /// Run `f` inside a named work region (for Figure 2-style traces).
    /// Time spent blocked in `recv`/collectives inside the region is
    /// recorded as wait, not work.
    pub fn region<R>(&self, label: &str, f: impl FnOnce() -> R) -> R {
        self.endpoint.borrow_mut().tracer.open_region(label);
        let out = f();
        self.endpoint.borrow_mut().tracer.close_region();
        out
    }

    /// Extract the trace recorded so far, resetting the recorder. The
    /// trace carries a snapshot of the comm statistics.
    pub fn take_trace(&self) -> RankTrace {
        let mut ep = self.endpoint.borrow_mut();
        let mut trace = ep.tracer.take();
        trace.stats = ep.stats.clone();
        trace
    }

    /// Teardown hook: pull everything still in the mailbox into a lint
    /// report and hand back the final trace. Called by the universe
    /// after the rank closure finishes.
    pub(crate) fn finalize(&self) -> (RankTrace, RankLint) {
        let mut ep = self.endpoint.borrow_mut();
        while let Ok(env) = ep.rx.try_recv() {
            ep.pending.push_back(env);
        }
        let mut leaked: BTreeMap<(usize, u32), usize> = BTreeMap::new();
        for e in &ep.pending {
            // Abort broadcasts are harness traffic, not application
            // leakage.
            if e.tag == TAG_ABORT {
                continue;
            }
            *leaked.entry((e.src, e.tag)).or_default() += 1;
        }
        let lint = RankLint {
            leaked: leaked.into_iter().collect(),
            unreleased_reorders: ep.held.len(),
            timed_out: ep.timed_out,
        };
        let mut trace = ep.tracer.take();
        trace.stats = std::mem::take(&mut ep.stats);
        (trace, lint)
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Send `value` to `dst` (a rank of this communicator) with `tag`.
    /// Non-blocking (buffered): like MPI's eager protocol.
    ///
    /// # Panics
    /// Panics if `tag` is in the internal range (>= 2^31) or `dst` is out
    /// of range.
    pub fn send<T: Send + 'static>(&self, dst: usize, tag: u32, value: T) {
        assert!(tag < INTERNAL_TAG, "user tags must be < 2^31");
        self.send_internal(dst, tag, value);
    }

    fn send_internal<T: Send + 'static>(&self, dst: usize, tag: u32, value: T) {
        let dst_world = self.group[dst];
        let bytes = std::mem::size_of_val(&value);
        let env = Envelope {
            ctx: self.ctx,
            src: self.world_rank(),
            tag,
            bytes,
            payload: Box::new(value),
        };
        let mut ep = self.endpoint.borrow_mut();
        ep.board.beat(self.world_rank());
        let ctl = Arc::clone(&ep.ctl);
        // A peer whose endpoint dropped mid-job means that rank died;
        // once the universe has raised the abort flag, park quietly
        // instead of turning the casualty into a second loud panic.
        let deliver = |env: Envelope| {
            if self.senders[dst_world].send(env).is_err() {
                if ctl.aborted() {
                    std::panic::panic_any(Quiesced);
                }
                panic!("peer rank endpoint dropped while sending");
            }
        };
        ep.stats.on_send(tag, bytes);
        let action = if let Some(faults) = ep.faults.clone() {
            let seq = ep.send_seq.entry((dst_world, tag)).or_insert(0);
            let s = *seq;
            *seq += 1;
            faults.decide(env.src, dst_world, tag, s)
        } else {
            None
        };
        match action {
            Some(FaultAction::Drop) => {
                ep.stats.on_injected_drop(tag);
            }
            Some(FaultAction::Delay(seconds)) => {
                // Deliver late without blocking the sender; a delivery
                // after the job ends is dropped (and flagged by lint
                // as a send/recv imbalance).
                let tx = self.senders[dst_world].clone();
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_secs_f64(seconds));
                    let _ = tx.send(env);
                });
            }
            Some(FaultAction::Reorder) => {
                ep.held.push((dst_world, env));
            }
            None => {
                deliver(env);
                // Release held messages *after* the one that just
                // overtook them.
                let mut i = 0;
                while i < ep.held.len() {
                    if ep.held[i].0 == dst_world {
                        let (_, held_env) = ep.held.remove(i);
                        deliver(held_env);
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// Receive a `T` from rank `src` of this communicator with `tag`,
    /// blocking until it arrives. Messages between the same (ctx, src,
    /// tag) triple are delivered in send order.
    ///
    /// # Panics
    /// Panics if the matched message's payload is not a `T`, or if the
    /// rank's default deadline (see [`Comm::set_default_deadline`])
    /// expires first.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u32) -> T {
        assert!(tag < INTERNAL_TAG, "user tags must be < 2^31");
        self.recv_internal(src, tag)
    }

    /// Like [`Comm::recv`] but with an explicit deadline; expiry returns
    /// a [`RecvTimeout`] carrying the unmatched mailbox contents instead
    /// of panicking, so callers can retry or degrade gracefully.
    pub fn recv_deadline<T: Send + 'static>(
        &self,
        src: usize,
        tag: u32,
        deadline: Duration,
    ) -> Result<T, RecvTimeout> {
        assert!(tag < INTERNAL_TAG, "user tags must be < 2^31");
        self.recv_matching(src, &[tag], Some(deadline))
            .map(downcast)
    }

    /// Block until a message from `src` carrying *any* of `tags`
    /// arrives, honoring the rank's default deadline. Use this to serve
    /// several protocol tags from one wait loop without busy-polling.
    ///
    /// # Panics
    /// Panics if the default deadline expires.
    pub fn recv_match(&self, src: usize, tags: &[u32]) -> Message {
        match self.recv_match_deadline(src, tags, self.default_deadline()) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`Comm::recv_match`] with an explicit deadline (`None`
    /// waits forever).
    pub fn recv_match_deadline(
        &self,
        src: usize,
        tags: &[u32],
        deadline: Option<Duration>,
    ) -> Result<Message, RecvTimeout> {
        assert!(!tags.is_empty(), "recv_match needs at least one tag");
        for t in tags {
            assert!(*t < INTERNAL_TAG, "user tags must be < 2^31");
        }
        self.recv_matching(src, tags, deadline)
            .map(|env| Message { env })
    }

    fn recv_internal<T: Send + 'static>(&self, src: usize, tag: u32) -> T {
        let deadline = self.default_deadline();
        match self.recv_matching(src, &[tag], deadline) {
            Ok(env) => downcast(env),
            Err(e) => panic!("{e}"),
        }
    }

    /// The receive engine: match the stash, then drain the channel, then
    /// block (with wait-time accounting and optional deadline). Blocking
    /// is chunked into [`BEACON`]-sized polls so a waiting rank keeps
    /// emitting idle heartbeats and notices the job-abort broadcast.
    fn recv_matching(
        &self,
        src: usize,
        tags: &[u32],
        deadline: Option<Duration>,
    ) -> Result<Envelope, RecvTimeout> {
        let src_world = self.group[src];
        let matches =
            |e: &Envelope| e.ctx == self.ctx && e.src == src_world && tags.contains(&e.tag);
        let mut ep = self.endpoint.borrow_mut();
        ep.board.beat(self.world_rank());
        if ep.ctl.aborted() {
            std::panic::panic_any(Quiesced);
        }

        // Check the stash first.
        if let Some(pos) = ep.pending.iter().position(matches) {
            let env = ep.pending.remove(pos).unwrap();
            ep.stats.on_recv(env.tag, env.bytes);
            ep.timed_out = false;
            return Ok(env);
        }

        // Drain the channel without blocking.
        while let Ok(env) = ep.rx.try_recv() {
            if env.tag == TAG_ABORT {
                std::panic::panic_any(Quiesced);
            }
            if matches(&env) {
                ep.stats.on_recv(env.tag, env.bytes);
                ep.timed_out = false;
                return Ok(env);
            }
            ep.pending.push_back(env);
        }

        // Block; account the blocked interval as wait time.
        let t0 = ep.tracer.now();
        let started = Instant::now();
        loop {
            let poll = match deadline {
                None => BEACON,
                Some(d) => match d.checked_sub(started.elapsed()) {
                    Some(remaining) => remaining.min(BEACON),
                    None => {
                        let t1 = ep.tracer.now();
                        ep.tracer.record_wait(t0, t1);
                        ep.stats.on_wait(tags[0], t1 - t0);
                        ep.timed_out = true;
                        let pending: Vec<(usize, u32)> =
                            ep.pending.iter().map(|e| (e.src, e.tag)).collect();
                        return Err(RecvTimeout {
                            rank: self.world_rank(),
                            src,
                            tags: tags.to_vec(),
                            waited: started.elapsed(),
                            pending,
                        });
                    }
                },
            };
            match ep.rx.recv_timeout(poll) {
                Ok(env) => {
                    if env.tag == TAG_ABORT {
                        std::panic::panic_any(Quiesced);
                    }
                    if matches(&env) {
                        let t1 = ep.tracer.now();
                        ep.tracer.record_wait(t0, t1);
                        ep.stats.on_wait(env.tag, t1 - t0);
                        ep.stats.on_recv(env.tag, env.bytes);
                        ep.timed_out = false;
                        return Ok(env);
                    }
                    ep.pending.push_back(env);
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Idle beacon: still alive, just waiting.
                    ep.board.beat(self.world_rank());
                    if ep.ctl.aborted() {
                        std::panic::panic_any(Quiesced);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    if ep.ctl.aborted() {
                        std::panic::panic_any(Quiesced);
                    }
                    panic!("all senders dropped while this rank is still receiving")
                }
            }
        }
    }

    /// Non-blocking probe: is a message from `src` with `tag` available?
    pub fn probe(&self, src: usize, tag: u32) -> bool {
        let src_world = self.group[src];
        let mut ep = self.endpoint.borrow_mut();
        while let Ok(env) = ep.rx.try_recv() {
            if env.tag == TAG_ABORT {
                std::panic::panic_any(Quiesced);
            }
            ep.pending.push_back(env);
        }
        ep.pending
            .iter()
            .any(|e| e.ctx == self.ctx && e.src == src_world && e.tag == tag)
    }

    /// Consume every currently-delivered message from `src` with `tag`,
    /// in delivery order, without blocking. Used to clear duplicates a
    /// retry protocol may have produced before teardown lint runs.
    pub fn drain<T: Send + 'static>(&self, src: usize, tag: u32) -> Vec<T> {
        assert!(tag < INTERNAL_TAG, "user tags must be < 2^31");
        let src_world = self.group[src];
        let mut ep = self.endpoint.borrow_mut();
        while let Ok(env) = ep.rx.try_recv() {
            if env.tag == TAG_ABORT {
                std::panic::panic_any(Quiesced);
            }
            ep.pending.push_back(env);
        }
        let mut out = Vec::new();
        let mut i = 0;
        while i < ep.pending.len() {
            let e = &ep.pending[i];
            if e.ctx == self.ctx && e.src == src_world && e.tag == tag {
                let env = ep.pending.remove(i).unwrap();
                ep.stats.on_recv(env.tag, env.bytes);
                out.push(downcast(env));
            } else {
                i += 1;
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Collectives (binomial trees; all ranks of the comm must call)
    // ------------------------------------------------------------------

    /// Block until every rank of this communicator has entered.
    /// Implemented as a binomial-tree fan-in to rank 0 followed by a
    /// tree broadcast release (O(log p) rounds).
    pub fn barrier(&self) {
        let p = self.size();
        if p == 1 {
            return;
        }
        // Fan-in to rank 0.
        let r = self.rank;
        let mut mask = 1usize;
        while mask < p {
            if r & mask != 0 {
                self.send_internal(r - mask, TAG_BARRIER_UP, ());
                break;
            }
            if r + mask < p {
                let () = self.recv_internal(r + mask, TAG_BARRIER_UP);
            }
            mask <<= 1;
        }
        // Release via the bcast tree.
        let _ = TAG_BARRIER_DOWN;
        let v = if r == 0 { Some(()) } else { None };
        self.bcast(0, v);
    }

    /// Broadcast from `root`. `value` must be `Some` on the root and is
    /// ignored elsewhere; every rank returns the root's value.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        let p = self.size();
        let vr = (self.rank + p - root) % p; // virtual rank, root -> 0
        let mut current: Option<T> = if vr == 0 {
            Some(value.expect("bcast root must supply a value"))
        } else {
            None
        };
        // Receive from virtual parent.
        if vr != 0 {
            let mut mask = 1usize;
            while mask < p {
                if vr & mask != 0 {
                    let parent = ((vr - mask) + root) % p;
                    current = Some(self.recv_internal(parent, TAG_BCAST));
                    break;
                }
                mask <<= 1;
            }
        }
        // Forward to virtual children.
        let v = current.expect("bcast tree delivered no value");
        let mut mask = 1usize;
        while mask < p && vr & mask == 0 {
            mask <<= 1;
        }
        let mut child = mask >> 1;
        while child > 0 {
            if vr + child < p {
                let dst = (vr + child + root) % p;
                self.send_internal(dst, TAG_BCAST, v.clone());
            }
            child >>= 1;
        }
        v
    }

    /// Element-wise reduction of `data` to `root`. Returns `Some(result)`
    /// on the root and `None` elsewhere. All ranks must pass slices of the
    /// same length.
    pub fn reduce(&self, data: &[f64], op: ReduceOp, root: usize) -> Option<Vec<f64>> {
        let p = self.size();
        let vr = (self.rank + p - root) % p;
        let mut acc = data.to_vec();
        let mut mask = 1usize;
        while mask < p {
            if vr & mask != 0 {
                let parent = ((vr - mask) + root) % p;
                self.send_internal(parent, TAG_REDUCE, acc);
                return None;
            } else if vr + mask < p {
                let src = (vr + mask + root) % p;
                let other: Vec<f64> = self.recv_internal(src, TAG_REDUCE);
                assert_eq!(
                    other.len(),
                    acc.len(),
                    "reduce called with mismatched lengths"
                );
                for (a, b) in acc.iter_mut().zip(other.iter()) {
                    *a = op.apply(*a, *b);
                }
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Reduction delivered to every rank.
    pub fn allreduce(&self, data: &[f64], op: ReduceOp) -> Vec<f64> {
        let r = self.reduce(data, op, 0);
        self.bcast(0, r)
    }

    /// In-place, allocation-recycling [`Comm::allreduce`]: every rank's
    /// `data` is overwritten with the element-wise reduction over all
    /// ranks. Bit-identical to `allreduce` (same binomial-tree fold
    /// order rooted at rank 0), but steady-state allocation-free: on one
    /// rank it is a pure no-op, and on several ranks message payloads
    /// are drawn from and returned to the per-thread [`crate::pool`],
    /// so repeated calls with the same length stop touching the heap.
    ///
    /// ```
    /// use foam_mpi::{ReduceOp, Universe};
    ///
    /// let out = Universe::run(4, |comm| {
    ///     let mut x = vec![comm.rank() as f64, 1.0];
    ///     comm.allreduce_mut(&mut x, ReduceOp::Sum);
    ///     x
    /// });
    /// for r in out.results {
    ///     assert_eq!(r, vec![6.0, 4.0]);
    /// }
    /// ```
    pub fn allreduce_mut(&self, data: &mut [f64], op: ReduceOp) {
        let p = self.size();
        if p == 1 {
            // reduce(root=0) at p = 1 returns the input unchanged, so
            // the in-place form has nothing to do.
            return;
        }
        // Fan-in reduce to rank 0 (virtual rank == rank), accumulating
        // into `data` with exactly the fold order of [`Comm::reduce`].
        let vr = self.rank;
        let mut mask = 1usize;
        while mask < p {
            if vr & mask != 0 {
                let parent = vr - mask;
                let mut buf = crate::pool::take(data.len());
                buf.copy_from_slice(data);
                self.send_internal(parent, TAG_REDUCE, buf);
                break;
            } else if vr + mask < p {
                let other: Vec<f64> = self.recv_internal(vr + mask, TAG_REDUCE);
                assert_eq!(
                    other.len(),
                    data.len(),
                    "allreduce_mut called with mismatched lengths"
                );
                for (a, b) in data.iter_mut().zip(other.iter()) {
                    *a = op.apply(*a, *b);
                }
                crate::pool::put(other);
            }
            mask <<= 1;
        }
        // Tree broadcast of the reduced vector from rank 0, in place.
        if vr != 0 {
            let mut mask = 1usize;
            while mask < p {
                if vr & mask != 0 {
                    let got: Vec<f64> = self.recv_internal(vr - mask, TAG_BCAST);
                    data.copy_from_slice(&got);
                    crate::pool::put(got);
                    break;
                }
                mask <<= 1;
            }
        }
        let mut mask = 1usize;
        while mask < p && vr & mask == 0 {
            mask <<= 1;
        }
        let mut child = mask >> 1;
        while child > 0 {
            if vr + child < p {
                let mut buf = crate::pool::take(data.len());
                buf.copy_from_slice(data);
                self.send_internal(vr + child, TAG_BCAST, buf);
            }
            child >>= 1;
        }
    }

    /// Scalar convenience wrapper over [`Comm::allreduce`].
    pub fn allreduce_scalar(&self, x: f64, op: ReduceOp) -> f64 {
        self.allreduce(&[x], op)[0]
    }

    /// Gather one `T` from each rank to `root`, in rank order.
    pub fn gather<T: Send + 'static>(&self, value: T, root: usize) -> Option<Vec<T>> {
        if self.rank == root {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(value);
            for r in 0..self.size() {
                if r != root {
                    out[r] = Some(self.recv_internal(r, TAG_GATHER));
                }
            }
            Some(out.into_iter().map(Option::unwrap).collect())
        } else {
            self.send_internal(root, TAG_GATHER, value);
            None
        }
    }

    /// Gather delivered to every rank.
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        let g = self.gather(value, 0);
        self.bcast(0, g)
    }

    /// Scatter one `T` to each rank from `root` (which supplies
    /// `Some(vec)` of length `size()`).
    pub fn scatter<T: Send + 'static>(&self, values: Option<Vec<T>>, root: usize) -> T {
        if self.rank == root {
            let values = values.expect("scatter root must supply values");
            assert_eq!(values.len(), self.size(), "scatter length != comm size");
            let mut mine: Option<T> = None;
            for (r, v) in values.into_iter().enumerate() {
                if r == root {
                    mine = Some(v);
                } else {
                    self.send_internal(r, TAG_SCATTER, v);
                }
            }
            mine.unwrap()
        } else {
            self.recv_internal(root, TAG_SCATTER)
        }
    }

    /// Variable all-to-all: rank `i` sends `sends[j]` to rank `j`; returns
    /// the vector received from each rank, in rank order.
    pub fn alltoallv(&self, sends: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        assert_eq!(sends.len(), self.size(), "alltoallv length != comm size");
        for (j, buf) in sends.into_iter().enumerate() {
            self.send_internal(j, TAG_ALLTOALL, buf);
        }
        (0..self.size())
            .map(|j| self.recv_internal::<Vec<f64>>(j, TAG_ALLTOALL))
            .collect()
    }

    // ------------------------------------------------------------------
    // Splitting
    // ------------------------------------------------------------------

    /// Partition this communicator by `color` (like `MPI_Comm_split`).
    /// Ranks passing the same non-negative color form a new communicator
    /// ordered by `(key, parent rank)`; a negative color returns `None`.
    /// All ranks of this communicator must call.
    pub fn split(&self, color: i64, key: i64) -> Option<Comm> {
        // Agree on a fresh context id: max of everyone's allocator, +1.
        let my_next = self.endpoint.borrow().next_ctx;
        let new_ctx = self.allreduce_scalar(my_next as f64, ReduceOp::Max) as u32;
        self.endpoint.borrow_mut().next_ctx = new_ctx + 1;

        // Share (color, key, world_rank) with everyone.
        let entries: Vec<(i64, i64, usize)> = {
            let mine = (color, key, self.world_rank());
            // allgather over parent ctx
            let g = self.gather(mine, 0);
            self.bcast(0, g)
        };
        // Explicit sync point so no one reuses TAG_SPLIT traffic across
        // overlapping splits on the same parent.
        let _ = TAG_SPLIT;

        if color < 0 {
            return None;
        }
        let mut members: Vec<(i64, usize, usize)> = entries
            .iter()
            .enumerate()
            .filter(|(_, (c, _, _))| *c == color)
            .map(|(parent_rank, (_, k, w))| (*k, parent_rank, *w))
            .collect();
        members.sort();
        let group: Vec<usize> = members.iter().map(|(_, _, w)| *w).collect();
        let my_world = self.world_rank();
        let rank = group
            .iter()
            .position(|&w| w == my_world)
            .expect("split member missing from its own group");
        Some(Comm {
            endpoint: Rc::clone(&self.endpoint),
            senders: Arc::clone(&self.senders),
            ctx: new_ctx,
            group: Rc::new(group),
            rank,
        })
    }

    /// Duplicate this communicator with a fresh context id (like
    /// `MPI_Comm_dup`): same group, isolated traffic.
    pub fn dup(&self) -> Comm {
        self.split(0, self.rank as i64)
            .expect("dup split cannot fail")
    }
}

fn downcast<T: Send + 'static>(env: Envelope) -> T {
    *env.payload.downcast::<T>().unwrap_or_else(|_| {
        panic!(
            "message type mismatch: received payload is not a {}",
            std::any::type_name::<T>()
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultPlan, RunConfig, Universe};

    #[test]
    fn send_recv_roundtrip() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0f64, 2.0, 3.0]);
            } else {
                let v: Vec<f64> = comm.recv(0, 7);
                assert_eq!(v, vec![1.0, 2.0, 3.0]);
            }
        });
    }

    #[test]
    fn tag_matching_reorders_messages() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 10i32);
                comm.send(1, 2, 20i32);
            } else {
                // Receive tag 2 first even though tag 1 was sent first.
                let b: i32 = comm.recv(0, 2);
                let a: i32 = comm.recv(0, 1);
                assert_eq!((a, b), (10, 20));
            }
        });
    }

    #[test]
    fn fifo_order_within_a_tag() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..100i64 {
                    comm.send(1, 3, i);
                }
            } else {
                for i in 0..100i64 {
                    let got: i64 = comm.recv(0, 3);
                    assert_eq!(got, i);
                }
            }
        });
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, 1.5f64);
            } else {
                let _: i32 = comm.recv(0, 0);
            }
        });
    }

    #[test]
    fn barrier_all_sizes() {
        for p in 1..=9 {
            Universe::run(p, |comm| {
                for _ in 0..5 {
                    comm.barrier();
                }
            });
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for p in 1..=6 {
            Universe::run(p, move |comm| {
                for root in 0..p {
                    let v = if comm.rank() == root {
                        Some(vec![root as f64; 3])
                    } else {
                        None
                    };
                    let got = comm.bcast(root, v);
                    assert_eq!(got, vec![root as f64; 3]);
                }
            });
        }
    }

    #[test]
    fn reduce_sum_min_max() {
        Universe::run(7, |comm| {
            let x = comm.rank() as f64;
            let s = comm.allreduce_scalar(x, ReduceOp::Sum);
            let mn = comm.allreduce_scalar(x, ReduceOp::Min);
            let mx = comm.allreduce_scalar(x, ReduceOp::Max);
            assert_eq!(s, 21.0);
            assert_eq!(mn, 0.0);
            assert_eq!(mx, 6.0);
        });
    }

    #[test]
    fn allreduce_mut_is_bit_identical_to_allreduce() {
        for p in 1..=6 {
            Universe::run(p, move |comm| {
                let data: Vec<f64> = (0..5)
                    .map(|i| (comm.rank() * 5 + i) as f64 * 0.37 - 3.0)
                    .collect();
                for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
                    let expect = comm.allreduce(&data, op);
                    let mut got = data.clone();
                    comm.allreduce_mut(&mut got, op);
                    assert_eq!(got, expect, "p={p} op={op:?}");
                }
            });
        }
    }

    #[test]
    fn reduce_vector_to_nonzero_root() {
        Universe::run(5, |comm| {
            let data = vec![comm.rank() as f64, 1.0];
            let out = comm.reduce(&data, ReduceOp::Sum, 3);
            if comm.rank() == 3 {
                assert_eq!(out.unwrap(), vec![10.0, 5.0]);
            } else {
                assert!(out.is_none());
            }
        });
    }

    #[test]
    fn gather_and_allgather_preserve_rank_order() {
        Universe::run(6, |comm| {
            let all = comm.allgather(comm.rank() * 2);
            assert_eq!(all, vec![0, 2, 4, 6, 8, 10]);
        });
    }

    #[test]
    fn scatter_distributes_in_rank_order() {
        Universe::run(4, |comm| {
            let vals = if comm.rank() == 0 {
                Some(vec![10, 11, 12, 13])
            } else {
                None
            };
            let mine = comm.scatter(vals, 0);
            assert_eq!(mine, 10 + comm.rank());
        });
    }

    #[test]
    fn alltoallv_exchanges_all_pairs() {
        Universe::run(4, |comm| {
            let sends: Vec<Vec<f64>> = (0..4)
                .map(|j| vec![(comm.rank() * 10 + j) as f64])
                .collect();
            let recvd = comm.alltoallv(sends);
            for (j, buf) in recvd.iter().enumerate() {
                assert_eq!(buf, &vec![(j * 10 + comm.rank()) as f64]);
            }
        });
    }

    #[test]
    fn split_into_even_odd_groups() {
        Universe::run(6, |comm| {
            let color = (comm.rank() % 2) as i64;
            let sub = comm.split(color, comm.rank() as i64).unwrap();
            assert_eq!(sub.size(), 3);
            // Sum of ranks within each sub-comm is over world ranks with
            // the same parity.
            let s = sub.allreduce_scalar(comm.rank() as f64, ReduceOp::Sum);
            if color == 0 {
                assert_eq!(s, 0.0 + 2.0 + 4.0);
            } else {
                assert_eq!(s, 1.0 + 3.0 + 5.0);
            }
        });
    }

    #[test]
    fn split_with_negative_color_excludes() {
        Universe::run(4, |comm| {
            let color = if comm.rank() == 0 { -1 } else { 0 };
            let sub = comm.split(color, 0);
            if comm.rank() == 0 {
                assert!(sub.is_none());
            } else {
                let sub = sub.unwrap();
                assert_eq!(sub.size(), 3);
                sub.barrier();
            }
        });
    }

    #[test]
    fn sub_comm_traffic_is_isolated_from_parent() {
        Universe::run(4, |comm| {
            let sub = comm.split(0, comm.rank() as i64).unwrap();
            if comm.rank() == 0 {
                comm.send(1, 5, 111i32);
                sub.send(1, 5, 222i32);
            } else if comm.rank() == 1 {
                // Receive in the opposite order: ctx separation must hold.
                let from_sub: i32 = sub.recv(0, 5);
                let from_parent: i32 = comm.recv(0, 5);
                assert_eq!(from_sub, 222);
                assert_eq!(from_parent, 111);
            }
        });
    }

    #[test]
    fn dup_isolates_traffic() {
        Universe::run(2, |comm| {
            let d = comm.dup();
            if comm.rank() == 0 {
                d.send(1, 9, 1u8);
                comm.send(1, 9, 2u8);
            } else {
                let b: u8 = comm.recv(0, 9);
                let a: u8 = d.recv(0, 9);
                assert_eq!((a, b), (1, 2));
            }
        });
    }

    #[test]
    fn split_key_reorders_ranks() {
        Universe::run(4, |comm| {
            // Reverse order via descending keys.
            let sub = comm.split(0, -(comm.rank() as i64)).unwrap();
            assert_eq!(sub.rank(), 3 - comm.rank());
            assert_eq!(sub.translate(sub.rank()), comm.rank());
        });
    }

    #[test]
    fn probe_sees_pending_message() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 4, 5i32);
                comm.barrier();
            } else {
                comm.barrier();
                assert!(comm.probe(0, 4));
                assert!(!comm.probe(0, 99));
                let _: i32 = comm.recv(0, 4);
            }
        });
    }

    #[test]
    fn wait_time_is_recorded_when_tracing() {
        let out = Universe::run_traced(2, true, |comm| {
            if comm.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
                comm.send(1, 0, ());
            } else {
                comm.region("work", || {
                    let () = comm.recv(0, 0);
                });
            }
        });
        let t1 = &out.traces[1];
        assert!(
            t1.wait_time() > 0.01,
            "expected blocked recv to record wait, got {:?}",
            t1
        );
    }

    // ------------------------------------------------------------------
    // Deadlines, stats, lint, faults
    // ------------------------------------------------------------------

    #[test]
    fn recv_deadline_times_out_and_names_the_leaked_message() {
        // Rank 0 sends tag 7 but rank 1 listens on tag 8: in classic MPI
        // this hangs forever. Here the deadline trips, the error names
        // the unmatched (source, tag) pair, and teardown lint reports
        // the leak.
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, 42i32);
                None
            } else {
                // Give the send time to land so the diagnostic sees it.
                std::thread::sleep(Duration::from_millis(20));
                Some(
                    comm.recv_deadline::<i32>(0, 8, Duration::from_millis(50))
                        .unwrap_err(),
                )
            }
        });
        let err = out.results[1].clone().unwrap();
        assert_eq!(err.rank, 1);
        assert_eq!(err.tags, vec![8]);
        assert!(err.pending.contains(&(0, 7)), "pending: {:?}", err.pending);
        let msg = err.to_string();
        assert!(msg.contains("deadline expired"), "{msg}");
        assert!(msg.contains("tag 7"), "{msg}");
        // Teardown lint singles out the same leaked pair.
        assert!(!out.lint.is_clean());
        assert_eq!(out.lint.leaked_pairs(), vec![(0, 7)]);
        assert_eq!(out.lint.timed_out_ranks, vec![1]);
    }

    #[test]
    #[should_panic(expected = "deadline expired")]
    fn default_deadline_panics_instead_of_hanging() {
        Universe::run_cfg(
            2,
            RunConfig {
                deadline: Some(Duration::from_millis(40)),
                ..Default::default()
            },
            |comm| {
                if comm.rank() == 1 {
                    // No one ever sends tag 3.
                    let _: i32 = comm.recv(0, 3);
                }
            },
        );
    }

    #[test]
    fn clean_run_has_clean_lint_and_balanced_tags() {
        let out = Universe::run(3, |comm| {
            let right = (comm.rank() + 1) % 3;
            let left = (comm.rank() + 2) % 3;
            comm.send(right, 5, comm.rank());
            let _: usize = comm.recv(left, 5);
            comm.barrier();
        });
        assert!(out.lint.is_clean(), "{}", out.lint);
        assert!(out.lint.unbalanced_tags.is_empty());
    }

    #[test]
    fn stats_count_messages_bytes_and_waits() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                std::thread::sleep(Duration::from_millis(10));
                comm.send(1, 9, vec![0.0f64; 8]);
            } else {
                let _: Vec<f64> = comm.recv(0, 9);
            }
        });
        let s0 = out.traces[0].stats.tag(9);
        assert_eq!(s0.msgs_sent, 1);
        assert!(s0.bytes_sent >= std::mem::size_of::<Vec<f64>>() as u64);
        let s1 = out.traces[1].stats.tag(9);
        assert_eq!(s1.msgs_recvd, 1);
        assert!(s1.wait_seconds > 5e-3, "wait {}", s1.wait_seconds);
        assert!(s1.wait_hist.count() >= 1);
    }

    #[test]
    fn recv_match_serves_multiple_tags_in_arrival_order() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 11, 1.5f64);
                comm.send(1, 12, 7usize);
            } else {
                let first = comm.recv_match(0, &[11, 12]);
                assert_eq!(first.tag(), 11);
                assert_eq!(first.downcast::<f64>(), 1.5);
                let second = comm.recv_match(0, &[11, 12]);
                assert_eq!(second.tag(), 12);
                assert_eq!(second.downcast::<usize>(), 7);
            }
        });
    }

    #[test]
    fn injected_drop_suppresses_delivery_but_keeps_lint_clean() {
        let cfg = RunConfig {
            faults: Some(FaultPlan::new(3).drop_first(0, 1, 6, 1)),
            ..Default::default()
        };
        let out = Universe::run_cfg(2, cfg, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 6, 1u8); // dropped
                comm.send(1, 6, 2u8); // delivered
            } else {
                let got: u8 = comm.recv(0, 6);
                assert_eq!(got, 2, "first send must have been dropped");
            }
        });
        assert_eq!(out.lint.injected_drops, 1);
        assert!(out.lint.is_clean(), "{}", out.lint);
        assert_eq!(out.traces[0].stats.tag(6).injected_drops, 1);
    }

    #[test]
    fn injected_reorder_swaps_adjacent_messages() {
        let cfg = RunConfig {
            faults: Some(FaultPlan::new(4).reorder_first(0, 1, 2, 1)),
            ..Default::default()
        };
        Universe::run_cfg(2, cfg, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 2, 10i32); // held back
                comm.send(1, 2, 20i32); // overtakes
            } else {
                let a: i32 = comm.recv(0, 2);
                let b: i32 = comm.recv(0, 2);
                assert_eq!((a, b), (20, 10), "reorder fault must swap delivery");
            }
        });
    }

    #[test]
    fn injected_delay_defers_delivery() {
        let cfg = RunConfig {
            faults: Some(FaultPlan::new(5).delay(0, 1, 8, 0.03)),
            ..Default::default()
        };
        let out = Universe::run_cfg(2, cfg, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 8, ());
                0.0
            } else {
                let t0 = comm.now();
                let () = comm.recv(0, 8);
                comm.now() - t0
            }
        });
        assert!(
            out.results[1] > 0.02,
            "delayed message arrived too fast: {} s",
            out.results[1]
        );
        assert!(out.lint.is_clean(), "{}", out.lint);
    }

    #[test]
    fn unmatched_send_shows_as_tag_imbalance() {
        // Rank 0 posts a message nobody receives; both the per-mailbox
        // leak and the global per-tag imbalance must flag it.
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 31, 9i64);
            }
            comm.barrier();
        });
        assert!(!out.lint.is_clean());
        assert_eq!(out.lint.leaked_pairs(), vec![(0, 31)]);
        let imb: Vec<u32> = out.lint.unbalanced_tags.iter().map(|t| t.tag).collect();
        assert_eq!(imb, vec![31]);
    }
}
