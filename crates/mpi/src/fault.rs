//! Deterministic fault injection for the message-passing runtime.
//!
//! A [`FaultPlan`] describes, *before the run starts*, which
//! point-to-point messages to drop, delay, or reorder. Decisions are a
//! pure function of the plan seed and the message's (source, dest, tag,
//! sequence) coordinates, so a given plan perturbs a given program
//! identically on every run — failures found under injection reproduce.
//!
//! Faults apply to user-tag point-to-point traffic only; the runtime's
//! internal collective protocols are never perturbed (dropping a
//! barrier message would test the fault injector, not the application).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::stats::INTERNAL_TAG;

/// What to do to a matched message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Silently discard the message (counted as an injected drop).
    Drop,
    /// Deliver the message after this many seconds, without blocking
    /// the sender.
    Delay(f64),
    /// Hold the message back until the *next* send to the same
    /// destination, which then overtakes it — a minimal out-of-order
    /// delivery.
    Reorder,
}

/// One match-and-act rule. `None` fields match anything.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Sending world rank.
    pub src: Option<usize>,
    /// Receiving world rank.
    pub dst: Option<usize>,
    pub tag: Option<u32>,
    pub action: FaultAction,
    /// Apply to at most this many matching messages (`None` =
    /// unlimited).
    pub max_hits: Option<u64>,
    /// Probability in [0, 1] that a matching message is hit; decided
    /// deterministically from the plan seed and message coordinates.
    pub probability: f64,
}

impl FaultRule {
    fn matches(&self, src: usize, dst: usize, tag: u32) -> bool {
        self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
            && self.tag.is_none_or(|t| t == tag)
    }
}

/// A seeded, cloneable schedule of message faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Drop the first `n` messages matching (src, dst, tag).
    pub fn drop_first(self, src: usize, dst: usize, tag: u32, n: u64) -> Self {
        self.with_rule(FaultRule {
            src: Some(src),
            dst: Some(dst),
            tag: Some(tag),
            action: FaultAction::Drop,
            max_hits: Some(n),
            probability: 1.0,
        })
    }

    /// Delay every message matching (src, dst, tag) by `seconds`.
    pub fn delay(self, src: usize, dst: usize, tag: u32, seconds: f64) -> Self {
        self.with_rule(FaultRule {
            src: Some(src),
            dst: Some(dst),
            tag: Some(tag),
            action: FaultAction::Delay(seconds),
            max_hits: None,
            probability: 1.0,
        })
    }

    /// Hold back the first `n` messages matching (src, dst, tag) so the
    /// following message to the same destination overtakes them.
    pub fn reorder_first(self, src: usize, dst: usize, tag: u32, n: u64) -> Self {
        self.with_rule(FaultRule {
            src: Some(src),
            dst: Some(dst),
            tag: Some(tag),
            action: FaultAction::Reorder,
            max_hits: Some(n),
            probability: 1.0,
        })
    }

    /// Drop each message matching (src→dst, tag) independently with
    /// probability `p` (deterministic per plan seed and message index).
    pub fn drop_with_probability(self, tag: u32, p: f64) -> Self {
        self.with_rule(FaultRule {
            src: None,
            dst: None,
            tag: Some(tag),
            action: FaultAction::Drop,
            max_hits: None,
            probability: p,
        })
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    pub(crate) fn activate(self) -> Arc<ActiveFaults> {
        let hits = (0..self.rules.len()).map(|_| AtomicU64::new(0)).collect();
        Arc::new(ActiveFaults { plan: self, hits })
    }
}

/// A plan armed for one run, with shared per-rule hit counters.
#[derive(Debug)]
pub(crate) struct ActiveFaults {
    plan: FaultPlan,
    hits: Vec<AtomicU64>,
}

impl ActiveFaults {
    /// Decide the fate of the `seq`-th message on (src → dst, tag).
    /// First matching rule wins. Internal tags are never faulted.
    pub(crate) fn decide(&self, src: usize, dst: usize, tag: u32, seq: u64) -> Option<FaultAction> {
        if tag >= INTERNAL_TAG {
            return None;
        }
        for (rule, hits) in self.plan.rules.iter().zip(&self.hits) {
            if !rule.matches(src, dst, tag) {
                continue;
            }
            if rule.probability < 1.0 {
                let roll = hash_coords(self.plan.seed, src, dst, tag, seq);
                if (roll >> 11) as f64 / (1u64 << 53) as f64 >= rule.probability {
                    continue;
                }
            }
            if let Some(max) = rule.max_hits {
                // Claim a hit slot atomically; later messages fall
                // through once the budget is spent.
                let prev = hits.fetch_add(1, Ordering::Relaxed);
                if prev >= max {
                    continue;
                }
            } else {
                hits.fetch_add(1, Ordering::Relaxed);
            }
            return Some(rule.action);
        }
        None
    }
}

/// SplitMix64 over the message coordinates: stable across runs.
fn hash_coords(seed: u64, src: usize, dst: usize, tag: u32, seq: u64) -> u64 {
    let mut z = seed
        ^ (src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (dst as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ (tag as u64).wrapping_mul(0x1656_67B1_9E37_79F9)
        ^ seq.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_first_hits_exactly_n() {
        let af = FaultPlan::new(1).drop_first(0, 1, 7, 2).activate();
        assert_eq!(af.decide(0, 1, 7, 0), Some(FaultAction::Drop));
        assert_eq!(af.decide(0, 1, 7, 1), Some(FaultAction::Drop));
        assert_eq!(af.decide(0, 1, 7, 2), None);
        // Different coordinates never match.
        assert_eq!(af.decide(1, 0, 7, 0), None);
        assert_eq!(af.decide(0, 1, 8, 0), None);
    }

    #[test]
    fn internal_tags_are_immune() {
        let af = FaultPlan::new(1)
            .with_rule(FaultRule {
                src: None,
                dst: None,
                tag: None,
                action: FaultAction::Drop,
                max_hits: None,
                probability: 1.0,
            })
            .activate();
        assert_eq!(af.decide(0, 1, INTERNAL_TAG, 0), None);
        assert_eq!(af.decide(0, 1, INTERNAL_TAG + 3, 5), None);
        assert_eq!(af.decide(0, 1, 0, 0), Some(FaultAction::Drop));
    }

    #[test]
    fn probabilistic_rules_are_deterministic_and_calibrated() {
        let plan = FaultPlan::new(42).drop_with_probability(3, 0.25);
        let a = plan.clone().activate();
        let b = plan.activate();
        let mut dropped = 0;
        for seq in 0..4000 {
            let da = a.decide(0, 1, 3, seq);
            assert_eq!(da, b.decide(0, 1, 3, seq), "plan must be deterministic");
            if da.is_some() {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / 4000.0;
        assert!((0.2..0.3).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn first_matching_rule_wins() {
        let af = FaultPlan::new(9)
            .delay(0, 1, 5, 0.001)
            .drop_first(0, 1, 5, 10)
            .activate();
        assert_eq!(af.decide(0, 1, 5, 0), Some(FaultAction::Delay(0.001)));
    }
}
