//! Deterministic (jitter-free) exponential backoff, shared by every
//! retry loop in the workspace.
//!
//! Three subsystems retry with a doubling delay: the coupled driver's
//! sequence-numbered SST re-request, the ensemble runner's per-member
//! retry loop, and the run supervisor's rollback-and-resume budget. All
//! of them must be *deterministic* — identical configuration must
//! produce identical delays, so recovery reports stay byte-identical —
//! which rules out the usual randomized jitter. This type is the single
//! shared implementation.

use std::time::Duration;

/// A deterministic exponential-backoff schedule: attempt `k` (1-based)
/// waits `base * 2^(k-1)` seconds, saturating at an optional cap.
///
/// ```
/// use foam_mpi::Backoff;
///
/// let b = Backoff::capped(0.05, 0.35);
/// assert_eq!(b.delay_secs(1), 0.05);
/// assert_eq!(b.delay_secs(2), 0.10);
/// assert_eq!(b.delay_secs(4), 0.35); // capped
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Delay of the first attempt, in seconds.
    pub base_secs: f64,
    /// Upper bound on any single delay, in seconds (`INFINITY` = none).
    pub cap_secs: f64,
}

impl Backoff {
    /// Uncapped schedule starting at `base_secs`.
    pub fn new(base_secs: f64) -> Self {
        Backoff {
            base_secs,
            cap_secs: f64::INFINITY,
        }
    }

    /// Schedule starting at `base_secs`, never exceeding `cap_secs`.
    pub fn capped(base_secs: f64, cap_secs: f64) -> Self {
        Backoff {
            base_secs,
            cap_secs,
        }
    }

    /// Delay before attempt `attempt` (1-based), in seconds. Attempt 0
    /// is treated as attempt 1. The doubling exponent is clamped at 16
    /// so the shift cannot overflow (the cap has long since saturated
    /// any realistic schedule by then).
    pub fn delay_secs(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(16);
        (self.base_secs * (1u64 << exp) as f64).min(self.cap_secs)
    }

    /// [`Backoff::delay_secs`] as a [`Duration`].
    pub fn delay(&self, attempt: u32) -> Duration {
        Duration::from_secs_f64(self.delay_secs(attempt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_from_the_base() {
        let b = Backoff::new(0.05);
        assert_eq!(b.delay_secs(1), 0.05);
        assert_eq!(b.delay_secs(2), 0.10);
        assert_eq!(b.delay_secs(3), 0.20);
        assert_eq!(b.delay_secs(4), 0.40);
    }

    #[test]
    fn attempt_zero_is_attempt_one() {
        let b = Backoff::new(0.05);
        assert_eq!(b.delay_secs(0), b.delay_secs(1));
    }

    #[test]
    fn cap_saturates() {
        let b = Backoff::capped(0.1, 0.35);
        assert_eq!(b.delay_secs(1), 0.1);
        assert_eq!(b.delay_secs(2), 0.2);
        assert_eq!(b.delay_secs(3), 0.35);
        assert_eq!(b.delay_secs(30), 0.35);
    }

    #[test]
    fn shift_is_clamped_not_overflowed() {
        let b = Backoff::new(1.0);
        // Attempt 200 must not overflow the 1u64 shift; it clamps at
        // 2^16 seconds.
        assert_eq!(b.delay_secs(200), 65_536.0);
    }

    #[test]
    fn duration_matches_seconds() {
        let b = Backoff::capped(0.05, 2.0);
        assert_eq!(b.delay(3), Duration::from_secs_f64(0.2));
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = Backoff::capped(0.05, 2.0);
        let b = Backoff::capped(0.05, 2.0);
        for k in 0..40 {
            assert_eq!(a.delay_secs(k), b.delay_secs(k));
        }
    }
}
