//! Launching an SPMD "job": one OS thread per rank, like `mpirun -np N`.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel;
use parking_lot::Mutex;

use crate::comm::Comm;
use crate::trace::RankTrace;

/// Results of a [`Universe::run`]: per-rank closure outputs and activity
/// traces, both indexed by rank.
#[derive(Debug)]
pub struct RunOutput<R> {
    pub results: Vec<R>,
    pub traces: Vec<RankTrace>,
}

/// Entry point of the message-passing runtime.
pub struct Universe;

/// Stack size per rank thread. The spectral atmosphere keeps its large
/// arrays on the heap, but physics drivers recurse over columns; 16 MiB
/// gives ample headroom (matching common MPI defaults).
const RANK_STACK: usize = 16 * 1024 * 1024;

impl Universe {
    /// Run `f` on `n` ranks and wait for all of them. Panics in any rank
    /// propagate (the whole job aborts, like an MPI error).
    pub fn run<R, F>(n: usize, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Send + Sync,
    {
        Self::run_traced(n, false, f)
    }

    /// Like [`Universe::run`] but with activity tracing enabled from the
    /// start on every rank (used to regenerate the paper's Figure 2).
    pub fn run_traced<R, F>(n: usize, tracing: bool, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Send + Sync,
    {
        assert!(n > 0, "a universe needs at least one rank");
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let senders = Arc::new(txs);
        let epoch = Instant::now();

        let results: Vec<Mutex<Option<(R, RankTrace)>>> =
            (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(n);
            for (rank, rx) in rxs.into_iter().enumerate() {
                let senders = Arc::clone(&senders);
                let f = &f;
                let slot = &results[rank];
                let handle = std::thread::Builder::new()
                    .name(format!("foam-rank-{rank}"))
                    .stack_size(RANK_STACK)
                    .spawn_scoped(s, move || {
                        let comm = Comm::new_world(rank, rx, senders, epoch, tracing);
                        let out = f(&comm);
                        let trace = comm.take_trace();
                        *slot.lock() = Some((out, trace));
                    })
                    .expect("failed to spawn rank thread");
                handles.push(handle);
            }
            for h in handles {
                if let Err(p) = h.join() {
                    std::panic::resume_unwind(p);
                }
            }
        });

        let mut outs = Vec::with_capacity(n);
        let mut traces = Vec::with_capacity(n);
        for slot in results {
            let (r, t) = slot
                .into_inner()
                .expect("rank finished without storing a result");
            outs.push(r);
            traces.push(t);
        }
        RunOutput {
            results: outs,
            traces,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_come_back_per_rank() {
        let out = Universe::run_traced(3, true, |comm| {
            comm.region("alpha", || std::thread::sleep(std::time::Duration::from_millis(5)));
            comm.rank()
        });
        assert_eq!(out.traces.len(), 3);
        for (i, t) in out.traces.iter().enumerate() {
            assert_eq!(t.rank, i);
            assert!(t.work_time("alpha") > 0.0);
        }
    }

    #[test]
    fn untraced_run_has_empty_traces() {
        let out = Universe::run(2, |comm| {
            comm.region("alpha", || {});
        });
        assert!(out.traces.iter().all(|t| t.segments.is_empty()));
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panic_propagates() {
        Universe::run(2, |comm| {
            if comm.rank() == 1 {
                panic!("deliberate");
            }
        });
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;
    use crate::ReduceOp;

    #[test]
    fn many_interleaved_collectives_and_pt2pt() {
        // A stress pattern mixing rings of sends with collectives, the
        // kind of traffic one coupled step generates.
        let p = 5;
        Universe::run(p, move |comm| {
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let mut acc = comm.rank() as f64;
            for round in 0..50u32 {
                comm.send(right, round, acc);
                let from_left: f64 = comm.recv(left, round);
                acc += from_left;
                if round % 7 == 0 {
                    let total = comm.allreduce_scalar(acc, ReduceOp::Sum);
                    assert!(total.is_finite());
                }
                if round % 11 == 0 {
                    comm.barrier();
                }
            }
            // Everyone survived with a finite accumulator.
            assert!(acc.is_finite());
        });
    }

    #[test]
    fn nested_splits_stay_isolated() {
        Universe::run(6, |comm| {
            let half = comm.split((comm.rank() / 3) as i64, comm.rank() as i64).unwrap();
            let pair = half.split((half.rank() % 2) as i64, 0).unwrap();
            // Sum ranks at each level; sizes must be consistent.
            assert_eq!(half.size(), 3);
            assert!(pair.size() == 1 || pair.size() == 2);
            let s = half.allreduce_scalar(1.0, ReduceOp::Sum);
            assert_eq!(s, 3.0);
            let s2 = pair.allreduce_scalar(1.0, ReduceOp::Sum);
            assert_eq!(s2, pair.size() as f64);
        });
    }

    #[test]
    fn large_payloads_round_trip() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let big: Vec<f64> = (0..200_000).map(|i| i as f64 * 0.5).collect();
                comm.send(1, 0, big);
            } else {
                let got: Vec<f64> = comm.recv(0, 0);
                assert_eq!(got.len(), 200_000);
                assert_eq!(got[199_999], 199_999.0 * 0.5);
            }
        });
    }
}
