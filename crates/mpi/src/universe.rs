//! Launching an SPMD "job": one OS thread per rank, like `mpirun -np N`.
//!
//! Teardown is failure-aware: after the rank closures return (or panic),
//! every rank's mailbox is drained into a [`CommLint`] report — unmatched
//! messages, per-tag send/receive imbalances, expired deadlines — so a
//! miscommunicating job *reports* what it leaked instead of hanging.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use parking_lot::Mutex;

use crate::comm::{make_abort, Comm, Quiesced, RankLint};
use crate::fault::FaultPlan;
use crate::heartbeat::{HeartbeatBoard, RankState};
use crate::stats::{CommLint, CommStats, LeakedMessage, TagImbalance};
use crate::trace::RankTrace;

/// Knobs for a [`Universe::run_cfg`] job.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Record per-rank activity traces from the start (Figure 2).
    pub tracing: bool,
    /// Default deadline applied to every blocking receive on every rank
    /// (`None` = wait forever, like classic MPI). A receive that trips
    /// the deadline panics with a mailbox diagnostic; the job then
    /// aborts with a comm-lint report instead of hanging.
    pub deadline: Option<Duration>,
    /// Deterministic fault-injection plan for point-to-point traffic.
    pub faults: Option<FaultPlan>,
}

/// Results of a [`Universe::run`]: per-rank closure outputs and activity
/// traces (both indexed by rank), plus the teardown comm-lint report.
#[derive(Debug)]
pub struct RunOutput<R> {
    pub results: Vec<R>,
    pub traces: Vec<RankTrace>,
    /// What the communication layer left behind at teardown.
    pub lint: CommLint,
    /// Heartbeats each rank emitted (piggybacked on comm activity plus
    /// idle beacons while blocked), indexed by rank. Timing-dependent —
    /// diagnostics only, never part of a deterministic report.
    pub heartbeats: Vec<u64>,
}

/// Job-wide abort control shared by every rank's endpoint: the first
/// rank to die raises the flag (and records itself as culprit), after
/// which surviving ranks park with a quiesce panic instead of hanging
/// or failing loudly on their own.
#[derive(Debug)]
pub(crate) struct JobControl {
    aborted: AtomicBool,
    culprit: AtomicUsize,
}

impl JobControl {
    fn new() -> Self {
        JobControl {
            aborted: AtomicBool::new(false),
            culprit: AtomicUsize::new(usize::MAX),
        }
    }

    /// Raise the abort flag on behalf of dead rank `rank`; only the
    /// first caller wins culprit attribution.
    fn signal(&self, rank: usize) {
        let _ = self
            .culprit
            .compare_exchange(usize::MAX, rank, Ordering::SeqCst, Ordering::SeqCst);
        self.aborted.store(true, Ordering::SeqCst);
    }

    pub(crate) fn aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    fn culprit(&self) -> Option<usize> {
        match self.culprit.load(Ordering::SeqCst) {
            usize::MAX => None,
            r => Some(r),
        }
    }
}

/// Typed description of a failed job, returned by
/// [`Universe::try_run_cfg`]: which rank died first, the panic message,
/// which survivors were quiesced by the abort broadcast, plus the
/// teardown lint and heartbeat counts for diagnosis.
pub struct RankFailure {
    /// World rank of the first rank that died (the culprit).
    pub rank: usize,
    /// The culprit's panic message (best-effort string extraction).
    pub detail: String,
    /// Ranks parked by the abort broadcast (casualties, ascending).
    pub quiesced: Vec<usize>,
    /// Per-rank heartbeat counts at teardown. Timing-dependent —
    /// diagnostics only.
    pub heartbeats: Vec<u64>,
    /// What the communication layer left behind at teardown.
    pub lint: CommLint,
    payload: Box<dyn std::any::Any + Send>,
}

impl RankFailure {
    /// Re-raise the culprit's original panic (used by the panicking
    /// [`Universe::run`]-family entry points).
    pub fn resume(self) -> ! {
        std::panic::resume_unwind(self.payload)
    }
}

impl std::fmt::Debug for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankFailure")
            .field("rank", &self.rank)
            .field("detail", &self.detail)
            .field("quiesced", &self.quiesced)
            .field("heartbeats", &self.heartbeats)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} died: {}", self.rank, self.detail)?;
        if !self.quiesced.is_empty() {
            write!(f, " ({} surviving ranks quiesced)", self.quiesced.len())?;
        }
        Ok(())
    }
}

impl std::error::Error for RankFailure {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Entry point of the message-passing runtime.
pub struct Universe;

/// Stack size per rank thread. The spectral atmosphere keeps its large
/// arrays on the heap, but physics drivers recurse over columns; 16 MiB
/// gives ample headroom (matching common MPI defaults).
const RANK_STACK: usize = 16 * 1024 * 1024;

impl Universe {
    /// Run `f` on `n` ranks and wait for all of them. Panics in any rank
    /// propagate (the whole job aborts, like an MPI error).
    pub fn run<R, F>(n: usize, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Send + Sync,
    {
        Self::run_cfg(n, RunConfig::default(), f)
    }

    /// Like [`Universe::run`] but with activity tracing enabled from the
    /// start on every rank (used to regenerate the paper's Figure 2).
    pub fn run_traced<R, F>(n: usize, tracing: bool, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Send + Sync,
    {
        Self::run_cfg(
            n,
            RunConfig {
                tracing,
                ..Default::default()
            },
            f,
        )
    }

    /// The fully configurable launcher: tracing, receive deadlines, and
    /// fault injection. Every rank runs under `catch_unwind` so that even
    /// when a rank panics (deadline expiry, type mismatch, application
    /// bug) the teardown lint still runs and is printed to stderr before
    /// the panic is propagated.
    pub fn run_cfg<R, F>(n: usize, cfg: RunConfig, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Send + Sync,
    {
        match Self::try_run_cfg(n, cfg, f) {
            Ok(out) => out,
            Err(failure) => {
                // Give the user the teardown diagnosis before aborting,
                // the way a batch MPI job prints its error file.
                eprintln!("{}", failure.lint);
                failure.resume()
            }
        }
    }

    /// Like [`Universe::run_cfg`] but a rank death comes back as a typed
    /// [`RankFailure`] instead of re-raising the panic. When a rank dies,
    /// the universe raises the job-abort flag and broadcasts an abort
    /// message to every surviving rank; survivors park with a quiesce
    /// panic at their next communication call (or within one idle-beacon
    /// interval if blocked), so the job tears down promptly and the
    /// *first* failure is the one attributed. This is the primitive the
    /// run supervisor builds detect-rollback-resume on.
    //
    // The Err variant is large (it carries the teardown lint, the
    // heartbeat board, and the panic payload), but this returns once
    // per *job*, not per message — boxing would only complicate the one
    // caller that matters.
    #[allow(clippy::result_large_err)]
    pub fn try_run_cfg<R, F>(n: usize, cfg: RunConfig, f: F) -> Result<RunOutput<R>, RankFailure>
    where
        R: Send,
        F: Fn(&Comm) -> R + Send + Sync,
    {
        assert!(n > 0, "a universe needs at least one rank");
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let senders = Arc::new(txs);
        let epoch = Instant::now();
        let faults = cfg
            .faults
            .filter(|p| !p.is_empty())
            .map(FaultPlan::activate);
        let board = Arc::new(HeartbeatBoard::new(n));
        let ctl = Arc::new(JobControl::new());

        type Slot<R> = (std::thread::Result<R>, RankTrace, RankLint);
        let slots: Vec<Mutex<Option<Slot<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(n);
            for (rank, rx) in rxs.into_iter().enumerate() {
                let senders = Arc::clone(&senders);
                let faults = faults.clone();
                let board = Arc::clone(&board);
                let ctl = Arc::clone(&ctl);
                let f = &f;
                let slot = &slots[rank];
                let deadline = cfg.deadline;
                let tracing = cfg.tracing;
                let handle = std::thread::Builder::new()
                    .name(format!("foam-rank-{rank}"))
                    .stack_size(RANK_STACK)
                    .spawn_scoped(s, move || {
                        let comm = Comm::new_world(
                            rank,
                            rx,
                            Arc::clone(&senders),
                            epoch,
                            tracing,
                            deadline,
                            faults,
                            Arc::clone(&board),
                            Arc::clone(&ctl),
                        );
                        let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(&comm)));
                        match &out {
                            Ok(_) => board.set_state(rank, RankState::Done),
                            Err(p) if p.is::<Quiesced>() => {
                                board.set_state(rank, RankState::Quiesced)
                            }
                            Err(_) => {
                                // This rank is the (or a) culprit: flag
                                // the job aborted and wake everyone
                                // still blocked in a receive.
                                board.set_state(rank, RankState::Dead);
                                ctl.signal(rank);
                                for (dst, tx) in senders.iter().enumerate() {
                                    if dst != rank {
                                        let _ = tx.send(make_abort(rank));
                                    }
                                }
                            }
                        }
                        let (trace, lint) = comm.finalize();
                        *slot.lock() = Some((out, trace, lint));
                    })
                    .expect("failed to spawn rank thread");
                handles.push(handle);
            }
            for h in handles {
                // The closure's own panic was caught; a join error here
                // would mean the harness itself failed.
                h.join().expect("rank thread harness panicked");
            }
        });

        let mut results = Vec::with_capacity(n);
        let mut traces = Vec::with_capacity(n);
        let mut rank_lints = Vec::with_capacity(n);
        let mut panics: Vec<(usize, Box<dyn std::any::Any + Send>)> = Vec::new();
        for (rank, slot) in slots.into_iter().enumerate() {
            let (out, trace, lint) = slot
                .into_inner()
                .expect("rank finished without storing a result");
            match out {
                Ok(r) => results.push(r),
                Err(p) => panics.push((rank, p)),
            }
            traces.push(trace);
            rank_lints.push(lint);
        }

        let lint = aggregate_lint(&traces, &rank_lints);

        if panics.is_empty() {
            return Ok(RunOutput {
                results,
                traces,
                lint,
                heartbeats: board.all_beats(),
            });
        }

        // Attribute the failure: the first rank that raised the abort
        // flag if known, else the lowest-rank non-quiesced panic, else
        // (only quiesce panics — possible when user code raises one
        // directly) the lowest-rank panic of any kind.
        let culprit_rank = ctl
            .culprit()
            .filter(|r| panics.iter().any(|(pr, _)| pr == r))
            .or_else(|| {
                panics
                    .iter()
                    .find(|(_, p)| !p.is::<Quiesced>())
                    .map(|(r, _)| *r)
            })
            .unwrap_or(panics[0].0);
        let pos = panics
            .iter()
            .position(|(r, _)| *r == culprit_rank)
            .expect("culprit rank must be among the panicked ranks");
        let (rank, payload) = panics.swap_remove(pos);
        Err(RankFailure {
            rank,
            detail: panic_message(payload.as_ref()),
            quiesced: board.ranks_in(RankState::Quiesced),
            heartbeats: board.all_beats(),
            lint,
            payload,
        })
    }
}

/// Fold per-rank mailbox leftovers and counters into the job-wide lint.
fn aggregate_lint(traces: &[RankTrace], rank_lints: &[RankLint]) -> CommLint {
    let mut lint = CommLint::default();
    let mut merged = CommStats::default();
    for (rank, (trace, rl)) in traces.iter().zip(rank_lints).enumerate() {
        merged.merge(&trace.stats);
        for ((src, tag), count) in &rl.leaked {
            lint.leaked.push(LeakedMessage {
                rank,
                src: *src,
                tag: *tag,
                count: *count,
            });
        }
        lint.unreleased_reorders += rl.unreleased_reorders;
        if rl.timed_out {
            lint.timed_out_ranks.push(rank);
        }
    }
    for (tag, t) in &merged.by_tag {
        lint.injected_drops += t.injected_drops;
        if t.msgs_sent - t.injected_drops != t.msgs_recvd {
            lint.unbalanced_tags.push(TagImbalance {
                tag: *tag,
                sent: t.msgs_sent,
                received: t.msgs_recvd,
                injected_drops: t.injected_drops,
            });
        }
    }
    lint
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_come_back_per_rank() {
        let out = Universe::run_traced(3, true, |comm| {
            comm.region("alpha", || {
                std::thread::sleep(std::time::Duration::from_millis(5))
            });
            comm.rank()
        });
        assert_eq!(out.traces.len(), 3);
        for (i, t) in out.traces.iter().enumerate() {
            assert_eq!(t.rank, i);
            assert!(t.work_time("alpha") > 0.0);
        }
    }

    #[test]
    fn untraced_run_has_empty_traces() {
        let out = Universe::run(2, |comm| {
            comm.region("alpha", || {});
        });
        assert!(out.traces.iter().all(|t| t.segments.is_empty()));
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panic_propagates() {
        Universe::run(2, |comm| {
            if comm.rank() == 1 {
                panic!("deliberate");
            }
        });
    }

    #[test]
    fn try_run_reports_the_dead_rank_and_quiesces_survivors() {
        // Rank 2 dies while ranks 0 and 1 are blocked in receives that
        // will never match; the abort broadcast must park them instead
        // of hanging the job, and the failure must name rank 2.
        let failure = Universe::try_run_cfg(3, RunConfig::default(), |comm| {
            match comm.rank() {
                2 => panic!("injected rank death"),
                _ => {
                    // Blocks forever without the abort broadcast.
                    let _: i32 = comm.recv((comm.rank() + 1) % 3, 77);
                }
            }
        })
        .unwrap_err();
        assert_eq!(failure.rank, 2);
        assert!(
            failure.detail.contains("injected rank death"),
            "{}",
            failure.detail
        );
        assert_eq!(failure.quiesced, vec![0, 1]);
        assert_eq!(failure.heartbeats.len(), 3);
    }

    #[test]
    fn try_run_succeeds_with_heartbeats() {
        let out = Universe::try_run_cfg(2, RunConfig::default(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, 5i32);
            } else {
                let _: i32 = comm.recv(0, 0);
            }
            comm.barrier();
        })
        .unwrap();
        assert_eq!(out.heartbeats.len(), 2);
        // Every rank communicated, so every rank beat at least once.
        assert!(
            out.heartbeats.iter().all(|&b| b > 0),
            "{:?}",
            out.heartbeats
        );
    }

    #[test]
    fn blocked_rank_emits_idle_beacons() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                // Long enough for several 25 ms beacon intervals.
                std::thread::sleep(std::time::Duration::from_millis(90));
                comm.send(1, 0, ());
            } else {
                let () = comm.recv(0, 0);
            }
        });
        // Rank 1 spent ~90 ms blocked: entry beat + >= 2 idle beacons.
        assert!(out.heartbeats[1] >= 3, "{:?}", out.heartbeats);
    }

    #[test]
    fn clean_job_reports_clean_lint() {
        let out = Universe::run(4, |comm| {
            comm.barrier();
            comm.allreduce_scalar(1.0, crate::ReduceOp::Sum)
        });
        assert!(out.lint.is_clean(), "{}", out.lint);
        assert_eq!(out.lint.injected_drops, 0);
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;
    use crate::ReduceOp;

    #[test]
    fn many_interleaved_collectives_and_pt2pt() {
        // A stress pattern mixing rings of sends with collectives, the
        // kind of traffic one coupled step generates.
        let p = 5;
        let out = Universe::run(p, move |comm| {
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let mut acc = comm.rank() as f64;
            for round in 0..50u32 {
                comm.send(right, round, acc);
                let from_left: f64 = comm.recv(left, round);
                acc += from_left;
                if round % 7 == 0 {
                    let total = comm.allreduce_scalar(acc, ReduceOp::Sum);
                    assert!(total.is_finite());
                }
                if round % 11 == 0 {
                    comm.barrier();
                }
            }
            // Everyone survived with a finite accumulator.
            assert!(acc.is_finite());
        });
        assert!(out.lint.is_clean(), "{}", out.lint);
    }

    #[test]
    fn nested_splits_stay_isolated() {
        Universe::run(6, |comm| {
            let half = comm
                .split((comm.rank() / 3) as i64, comm.rank() as i64)
                .unwrap();
            let pair = half.split((half.rank() % 2) as i64, 0).unwrap();
            // Sum ranks at each level; sizes must be consistent.
            assert_eq!(half.size(), 3);
            assert!(pair.size() == 1 || pair.size() == 2);
            let s = half.allreduce_scalar(1.0, ReduceOp::Sum);
            assert_eq!(s, 3.0);
            let s2 = pair.allreduce_scalar(1.0, ReduceOp::Sum);
            assert_eq!(s2, pair.size() as f64);
        });
    }

    #[test]
    fn large_payloads_round_trip() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let big: Vec<f64> = (0..200_000).map(|i| i as f64 * 0.5).collect();
                comm.send(1, 0, big);
            } else {
                let got: Vec<f64> = comm.recv(0, 0);
                assert_eq!(got.len(), 200_000);
                assert_eq!(got[199_999], 199_999.0 * 0.5);
            }
        });
    }
}
