//! Launching an SPMD "job": one OS thread per rank, like `mpirun -np N`.
//!
//! Teardown is failure-aware: after the rank closures return (or panic),
//! every rank's mailbox is drained into a [`CommLint`] report — unmatched
//! messages, per-tag send/receive imbalances, expired deadlines — so a
//! miscommunicating job *reports* what it leaked instead of hanging.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use parking_lot::Mutex;

use crate::comm::{Comm, RankLint};
use crate::fault::FaultPlan;
use crate::stats::{CommLint, CommStats, LeakedMessage, TagImbalance};
use crate::trace::RankTrace;

/// Knobs for a [`Universe::run_cfg`] job.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Record per-rank activity traces from the start (Figure 2).
    pub tracing: bool,
    /// Default deadline applied to every blocking receive on every rank
    /// (`None` = wait forever, like classic MPI). A receive that trips
    /// the deadline panics with a mailbox diagnostic; the job then
    /// aborts with a comm-lint report instead of hanging.
    pub deadline: Option<Duration>,
    /// Deterministic fault-injection plan for point-to-point traffic.
    pub faults: Option<FaultPlan>,
}

/// Results of a [`Universe::run`]: per-rank closure outputs and activity
/// traces (both indexed by rank), plus the teardown comm-lint report.
#[derive(Debug)]
pub struct RunOutput<R> {
    pub results: Vec<R>,
    pub traces: Vec<RankTrace>,
    /// What the communication layer left behind at teardown.
    pub lint: CommLint,
}

/// Entry point of the message-passing runtime.
pub struct Universe;

/// Stack size per rank thread. The spectral atmosphere keeps its large
/// arrays on the heap, but physics drivers recurse over columns; 16 MiB
/// gives ample headroom (matching common MPI defaults).
const RANK_STACK: usize = 16 * 1024 * 1024;

impl Universe {
    /// Run `f` on `n` ranks and wait for all of them. Panics in any rank
    /// propagate (the whole job aborts, like an MPI error).
    pub fn run<R, F>(n: usize, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Send + Sync,
    {
        Self::run_cfg(n, RunConfig::default(), f)
    }

    /// Like [`Universe::run`] but with activity tracing enabled from the
    /// start on every rank (used to regenerate the paper's Figure 2).
    pub fn run_traced<R, F>(n: usize, tracing: bool, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Send + Sync,
    {
        Self::run_cfg(
            n,
            RunConfig {
                tracing,
                ..Default::default()
            },
            f,
        )
    }

    /// The fully configurable launcher: tracing, receive deadlines, and
    /// fault injection. Every rank runs under `catch_unwind` so that even
    /// when a rank panics (deadline expiry, type mismatch, application
    /// bug) the teardown lint still runs and is printed to stderr before
    /// the panic is propagated.
    pub fn run_cfg<R, F>(n: usize, cfg: RunConfig, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Send + Sync,
    {
        assert!(n > 0, "a universe needs at least one rank");
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let senders = Arc::new(txs);
        let epoch = Instant::now();
        let faults = cfg
            .faults
            .filter(|p| !p.is_empty())
            .map(FaultPlan::activate);

        type Slot<R> = (std::thread::Result<R>, RankTrace, RankLint);
        let slots: Vec<Mutex<Option<Slot<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(n);
            for (rank, rx) in rxs.into_iter().enumerate() {
                let senders = Arc::clone(&senders);
                let faults = faults.clone();
                let f = &f;
                let slot = &slots[rank];
                let deadline = cfg.deadline;
                let tracing = cfg.tracing;
                let handle = std::thread::Builder::new()
                    .name(format!("foam-rank-{rank}"))
                    .stack_size(RANK_STACK)
                    .spawn_scoped(s, move || {
                        let comm =
                            Comm::new_world(rank, rx, senders, epoch, tracing, deadline, faults);
                        let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(&comm)));
                        let (trace, lint) = comm.finalize();
                        *slot.lock() = Some((out, trace, lint));
                    })
                    .expect("failed to spawn rank thread");
                handles.push(handle);
            }
            for h in handles {
                // The closure's own panic was caught; a join error here
                // would mean the harness itself failed.
                h.join().expect("rank thread harness panicked");
            }
        });

        let mut results = Vec::with_capacity(n);
        let mut traces = Vec::with_capacity(n);
        let mut rank_lints = Vec::with_capacity(n);
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for slot in slots {
            let (out, trace, lint) = slot
                .into_inner()
                .expect("rank finished without storing a result");
            match out {
                Ok(r) => results.push(r),
                Err(p) => {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
            }
            traces.push(trace);
            rank_lints.push(lint);
        }

        let lint = aggregate_lint(&traces, &rank_lints);

        if let Some(p) = first_panic {
            // Give the user the teardown diagnosis before aborting, the
            // way a batch MPI job prints its error file.
            eprintln!("{lint}");
            std::panic::resume_unwind(p);
        }
        RunOutput {
            results,
            traces,
            lint,
        }
    }
}

/// Fold per-rank mailbox leftovers and counters into the job-wide lint.
fn aggregate_lint(traces: &[RankTrace], rank_lints: &[RankLint]) -> CommLint {
    let mut lint = CommLint::default();
    let mut merged = CommStats::default();
    for (rank, (trace, rl)) in traces.iter().zip(rank_lints).enumerate() {
        merged.merge(&trace.stats);
        for ((src, tag), count) in &rl.leaked {
            lint.leaked.push(LeakedMessage {
                rank,
                src: *src,
                tag: *tag,
                count: *count,
            });
        }
        lint.unreleased_reorders += rl.unreleased_reorders;
        if rl.timed_out {
            lint.timed_out_ranks.push(rank);
        }
    }
    for (tag, t) in &merged.by_tag {
        lint.injected_drops += t.injected_drops;
        if t.msgs_sent - t.injected_drops != t.msgs_recvd {
            lint.unbalanced_tags.push(TagImbalance {
                tag: *tag,
                sent: t.msgs_sent,
                received: t.msgs_recvd,
                injected_drops: t.injected_drops,
            });
        }
    }
    lint
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_come_back_per_rank() {
        let out = Universe::run_traced(3, true, |comm| {
            comm.region("alpha", || {
                std::thread::sleep(std::time::Duration::from_millis(5))
            });
            comm.rank()
        });
        assert_eq!(out.traces.len(), 3);
        for (i, t) in out.traces.iter().enumerate() {
            assert_eq!(t.rank, i);
            assert!(t.work_time("alpha") > 0.0);
        }
    }

    #[test]
    fn untraced_run_has_empty_traces() {
        let out = Universe::run(2, |comm| {
            comm.region("alpha", || {});
        });
        assert!(out.traces.iter().all(|t| t.segments.is_empty()));
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panic_propagates() {
        Universe::run(2, |comm| {
            if comm.rank() == 1 {
                panic!("deliberate");
            }
        });
    }

    #[test]
    fn clean_job_reports_clean_lint() {
        let out = Universe::run(4, |comm| {
            comm.barrier();
            comm.allreduce_scalar(1.0, crate::ReduceOp::Sum)
        });
        assert!(out.lint.is_clean(), "{}", out.lint);
        assert_eq!(out.lint.injected_drops, 0);
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;
    use crate::ReduceOp;

    #[test]
    fn many_interleaved_collectives_and_pt2pt() {
        // A stress pattern mixing rings of sends with collectives, the
        // kind of traffic one coupled step generates.
        let p = 5;
        let out = Universe::run(p, move |comm| {
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let mut acc = comm.rank() as f64;
            for round in 0..50u32 {
                comm.send(right, round, acc);
                let from_left: f64 = comm.recv(left, round);
                acc += from_left;
                if round % 7 == 0 {
                    let total = comm.allreduce_scalar(acc, ReduceOp::Sum);
                    assert!(total.is_finite());
                }
                if round % 11 == 0 {
                    comm.barrier();
                }
            }
            // Everyone survived with a finite accumulator.
            assert!(acc.is_finite());
        });
        assert!(out.lint.is_clean(), "{}", out.lint);
    }

    #[test]
    fn nested_splits_stay_isolated() {
        Universe::run(6, |comm| {
            let half = comm
                .split((comm.rank() / 3) as i64, comm.rank() as i64)
                .unwrap();
            let pair = half.split((half.rank() % 2) as i64, 0).unwrap();
            // Sum ranks at each level; sizes must be consistent.
            assert_eq!(half.size(), 3);
            assert!(pair.size() == 1 || pair.size() == 2);
            let s = half.allreduce_scalar(1.0, ReduceOp::Sum);
            assert_eq!(s, 3.0);
            let s2 = pair.allreduce_scalar(1.0, ReduceOp::Sum);
            assert_eq!(s2, pair.size() as f64);
        });
    }

    #[test]
    fn large_payloads_round_trip() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let big: Vec<f64> = (0..200_000).map(|i| i as f64 * 0.5).collect();
                comm.send(1, 0, big);
            } else {
                let got: Vec<f64> = comm.recv(0, 0);
                assert_eq!(got.len(), 200_000);
                assert_eq!(got[199_999], 199_999.0 * 0.5);
            }
        });
    }
}
