//! Per-rank communication statistics and the teardown "comm-lint".
//!
//! Every send/recv through a [`crate::Comm`] is counted per tag —
//! message counts, (shallow) payload bytes, and a log-scale histogram of
//! time spent blocked waiting for each tag. The counters ride along in
//! [`crate::RankTrace`], so the Figure 2 tooling can report *what* the
//! ranks were waiting on, not just that they waited.
//!
//! At teardown, [`crate::Universe`] folds the per-rank counters and the
//! leftover mailbox contents into a [`CommLint`] report: messages that
//! were sent but never matched by a receive, per-tag send/recv
//! imbalances, and ranks whose receives timed out — the debugging
//! information a hung MPI job never gives you.

use std::collections::BTreeMap;

/// Tags at or above this bound are internal to the runtime (barriers,
/// broadcast trees, ...); user tags stay below it.
pub(crate) const INTERNAL_TAG: u32 = 0x8000_0000;

/// Human-readable name for a tag: internal tags get their protocol name,
/// user tags are shown numerically.
pub fn tag_label(tag: u32) -> String {
    match tag.checked_sub(INTERNAL_TAG) {
        Some(0) => "internal:barrier".to_string(),
        Some(1) => "internal:barrier-release".to_string(),
        Some(2) => "internal:bcast".to_string(),
        Some(3) => "internal:reduce".to_string(),
        Some(4) => "internal:gather".to_string(),
        Some(5) => "internal:scatter".to_string(),
        Some(6) => "internal:alltoall".to_string(),
        Some(7) => "internal:split".to_string(),
        Some(n) => format!("internal:{n}"),
        None => format!("tag {tag}"),
    }
}

/// Histogram of wait durations with power-of-4 microsecond buckets:
/// <1 µs, <4 µs, <16 µs, ..., the last bucket catching everything else.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaitHistogram {
    pub buckets: [u64; 12],
}

impl WaitHistogram {
    pub fn record(&mut self, seconds: f64) {
        let micros = seconds * 1e6;
        let mut bound = 1.0;
        for b in &mut self.buckets[..11] {
            if micros < bound {
                *b += 1;
                return;
            }
            bound *= 4.0;
        }
        self.buckets[11] += 1;
    }

    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Compact rendering like `2@<1µs 5@<64µs` listing non-empty buckets.
    pub fn summarize(&self) -> String {
        let mut parts = Vec::new();
        let mut bound = 1u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                if i < 11 {
                    parts.push(format!("{n}@<{}", fmt_micros(bound)));
                } else {
                    parts.push(format!("{n}@>={}", fmt_micros(bound / 4)));
                }
            }
            bound = bound.saturating_mul(4);
        }
        if parts.is_empty() {
            "-".to_string()
        } else {
            parts.join(" ")
        }
    }
}

fn fmt_micros(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{}s", us / 1_000_000)
    } else if us >= 1_000 {
        format!("{}ms", us / 1_000)
    } else {
        format!("{us}µs")
    }
}

/// Counters for one tag on one rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TagStats {
    pub msgs_sent: u64,
    pub msgs_recvd: u64,
    /// Shallow payload bytes (`size_of_val` of the sent value — heap
    /// contents behind pointers are not chased).
    pub bytes_sent: u64,
    pub bytes_recvd: u64,
    /// Sends suppressed by fault injection.
    pub injected_drops: u64,
    /// Total seconds this rank spent blocked waiting on this tag.
    pub wait_seconds: f64,
    pub wait_hist: WaitHistogram,
}

/// Per-tag communication counters for one rank (or, after merging, a
/// whole job).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommStats {
    pub by_tag: BTreeMap<u32, TagStats>,
}

impl CommStats {
    pub(crate) fn on_send(&mut self, tag: u32, bytes: usize) {
        let t = self.by_tag.entry(tag).or_default();
        t.msgs_sent += 1;
        t.bytes_sent += bytes as u64;
    }

    pub(crate) fn on_recv(&mut self, tag: u32, bytes: usize) {
        let t = self.by_tag.entry(tag).or_default();
        t.msgs_recvd += 1;
        t.bytes_recvd += bytes as u64;
    }

    pub(crate) fn on_injected_drop(&mut self, tag: u32) {
        self.by_tag.entry(tag).or_default().injected_drops += 1;
    }

    pub(crate) fn on_wait(&mut self, tag: u32, seconds: f64) {
        let t = self.by_tag.entry(tag).or_default();
        t.wait_seconds += seconds;
        t.wait_hist.record(seconds);
    }

    /// Counters for one tag (zeros if the tag never appeared).
    pub fn tag(&self, tag: u32) -> TagStats {
        self.by_tag.get(&tag).cloned().unwrap_or_default()
    }

    /// Tags in the user range only.
    pub fn user_tags(&self) -> impl Iterator<Item = (&u32, &TagStats)> {
        self.by_tag.iter().filter(|(t, _)| **t < INTERNAL_TAG)
    }

    pub fn total_msgs_sent(&self) -> u64 {
        self.by_tag.values().map(|t| t.msgs_sent).sum()
    }

    /// Fold another rank's counters into this one.
    pub fn merge(&mut self, other: &CommStats) {
        for (tag, o) in &other.by_tag {
            let t = self.by_tag.entry(*tag).or_default();
            t.msgs_sent += o.msgs_sent;
            t.msgs_recvd += o.msgs_recvd;
            t.bytes_sent += o.bytes_sent;
            t.bytes_recvd += o.bytes_recvd;
            t.injected_drops += o.injected_drops;
            t.wait_seconds += o.wait_seconds;
            for (b, ob) in t.wait_hist.buckets.iter_mut().zip(o.wait_hist.buckets) {
                *b += ob;
            }
        }
    }
}

/// A message that was still sitting unmatched in a rank's mailbox when
/// that rank finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakedMessage {
    /// Rank whose mailbox held the message.
    pub rank: usize,
    /// World rank that sent it.
    pub src: usize,
    pub tag: u32,
    pub count: usize,
}

/// A tag whose global send/receive counts do not balance after
/// accounting for injected drops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagImbalance {
    pub tag: u32,
    pub sent: u64,
    pub received: u64,
    pub injected_drops: u64,
}

/// The teardown report of a [`crate::Universe`] run: what the
/// communication layer left behind.
#[derive(Debug, Clone, Default)]
pub struct CommLint {
    /// Unmatched messages found in rank mailboxes at teardown, by
    /// receiving rank then (src, tag).
    pub leaked: Vec<LeakedMessage>,
    /// Tags where `sent - injected_drops != received` across the job.
    pub unbalanced_tags: Vec<TagImbalance>,
    /// Ranks on which at least one receive deadline expired.
    pub timed_out_ranks: Vec<usize>,
    /// Messages held back by a reorder fault and never released.
    pub unreleased_reorders: usize,
    /// Total sends suppressed by fault injection (expected losses).
    pub injected_drops: u64,
}

impl CommLint {
    /// True when the run left no unexplained communication residue.
    /// Injected drops are *expected* losses and do not dirty the lint.
    pub fn is_clean(&self) -> bool {
        self.leaked.is_empty()
            && self.unbalanced_tags.is_empty()
            && self.timed_out_ranks.is_empty()
            && self.unreleased_reorders == 0
    }

    /// The (src, tag) pairs of all leaked messages, deduplicated — the
    /// first thing to look at when a run times out.
    pub fn leaked_pairs(&self) -> Vec<(usize, u32)> {
        let mut out: Vec<(usize, u32)> = self.leaked.iter().map(|l| (l.src, l.tag)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl std::fmt::Display for CommLint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return writeln!(
                f,
                "comm-lint: clean ({} injected drop(s))",
                self.injected_drops
            );
        }
        writeln!(f, "comm-lint: DIRTY")?;
        for l in &self.leaked {
            writeln!(
                f,
                "  leaked: rank {} holds {} unmatched message(s) from rank {} with {}",
                l.rank,
                l.count,
                l.src,
                tag_label(l.tag)
            )?;
        }
        for t in &self.unbalanced_tags {
            writeln!(
                f,
                "  imbalance: {} sent {} (-{} injected) but received {}",
                tag_label(t.tag),
                t.sent,
                t.injected_drops,
                t.received
            )?;
        }
        if !self.timed_out_ranks.is_empty() {
            writeln!(f, "  timed-out ranks: {:?}", self.timed_out_ranks)?;
        }
        if self.unreleased_reorders > 0 {
            writeln!(
                f,
                "  {} reordered message(s) were never released",
                self.unreleased_reorders
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_magnitude() {
        let mut h = WaitHistogram::default();
        h.record(0.5e-6); // <1 µs
        h.record(2e-6); // <4 µs
        h.record(10.0); // catch-all (>= 4^10 µs ≈ 1.05 s)
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[11], 1);
        assert_eq!(h.count(), 3);
        let s = h.summarize();
        assert!(s.contains("1@<1µs"), "{s}");
    }

    #[test]
    fn stats_count_and_merge() {
        let mut a = CommStats::default();
        a.on_send(7, 100);
        a.on_send(7, 50);
        a.on_recv(7, 100);
        a.on_wait(7, 1e-3);
        let mut b = CommStats::default();
        b.on_send(7, 10);
        b.on_injected_drop(7);
        a.merge(&b);
        let t = a.tag(7);
        assert_eq!(t.msgs_sent, 3);
        assert_eq!(t.bytes_sent, 160);
        assert_eq!(t.msgs_recvd, 1);
        assert_eq!(t.injected_drops, 1);
        assert!(t.wait_seconds > 0.0);
    }

    #[test]
    fn internal_tags_are_named_and_filtered() {
        assert_eq!(tag_label(INTERNAL_TAG), "internal:barrier");
        assert_eq!(tag_label(5), "tag 5");
        let mut s = CommStats::default();
        s.on_send(3, 1);
        s.on_send(INTERNAL_TAG, 1);
        assert_eq!(s.user_tags().count(), 1);
        assert_eq!(s.total_msgs_sent(), 2);
    }

    #[test]
    fn lint_clean_and_dirty_rendering() {
        let clean = CommLint {
            injected_drops: 2,
            ..Default::default()
        };
        assert!(clean.is_clean());
        assert!(clean.to_string().contains("clean"));

        let dirty = CommLint {
            leaked: vec![LeakedMessage {
                rank: 1,
                src: 0,
                tag: 7,
                count: 2,
            }],
            ..Default::default()
        };
        assert!(!dirty.is_clean());
        assert_eq!(dirty.leaked_pairs(), vec![(0, 7)]);
        assert!(dirty.to_string().contains("tag 7"));
    }
}
