//! Per-rank liveness heartbeats.
//!
//! Every rank of a running job ticks a shared [`HeartbeatBoard`]:
//! heartbeats piggyback on every send and receive (a rank doing real
//! communication is visibly alive for free), and a rank *blocked* in a
//! receive emits an idle-period beacon every poll interval, so "quiet
//! because waiting" and "quiet because dead" are distinguishable. The
//! universe marks terminal states on the same board — done, dead
//! (panicked), or quiesced (parked by a job abort) — which is what the
//! run supervisor reads when it classifies a failure.
//!
//! Heartbeat *counts* are timing-dependent (a slow machine beacons more
//! often) and must never enter a deterministic report; they are
//! diagnostics only.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Lifecycle of one rank as seen by the heartbeat board.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankState {
    /// The rank closure is executing (or blocked in a receive, still
    /// emitting idle beacons).
    Running,
    /// The rank closure returned normally.
    Done,
    /// The rank closure panicked — the failure that aborts the job.
    Dead,
    /// The rank was parked by the job-abort broadcast after another
    /// rank died; it is a casualty, not a culprit.
    Quiesced,
}

impl RankState {
    fn from_u8(v: u8) -> RankState {
        match v {
            1 => RankState::Done,
            2 => RankState::Dead,
            3 => RankState::Quiesced,
            _ => RankState::Running,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            RankState::Running => 0,
            RankState::Done => 1,
            RankState::Dead => 2,
            RankState::Quiesced => 3,
        }
    }
}

/// Shared liveness board: one heartbeat counter and one lifecycle state
/// per rank. All operations are lock-free relaxed atomics — the board
/// is advisory, never a synchronization point.
#[derive(Debug)]
pub struct HeartbeatBoard {
    beats: Vec<AtomicU64>,
    states: Vec<AtomicU8>,
}

impl HeartbeatBoard {
    /// A fresh board for `n` ranks, all `Running` with zero beats.
    pub fn new(n: usize) -> Self {
        HeartbeatBoard {
            beats: (0..n).map(|_| AtomicU64::new(0)).collect(),
            states: (0..n).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Number of ranks on the board.
    pub fn len(&self) -> usize {
        self.beats.len()
    }

    /// True when the board covers zero ranks.
    pub fn is_empty(&self) -> bool {
        self.beats.is_empty()
    }

    /// Tick `rank`'s heartbeat (piggybacked on comm activity or emitted
    /// as an idle beacon).
    #[inline]
    pub fn beat(&self, rank: usize) {
        self.beats[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Heartbeats recorded for `rank` so far. Timing-dependent — never
    /// put this in a deterministic report.
    pub fn beats(&self, rank: usize) -> u64 {
        self.beats[rank].load(Ordering::Relaxed)
    }

    /// Snapshot of every rank's heartbeat count.
    pub fn all_beats(&self) -> Vec<u64> {
        self.beats
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Record `rank`'s lifecycle state.
    pub fn set_state(&self, rank: usize, state: RankState) {
        self.states[rank].store(state.as_u8(), Ordering::Relaxed);
    }

    /// `rank`'s last recorded lifecycle state.
    pub fn state(&self, rank: usize) -> RankState {
        RankState::from_u8(self.states[rank].load(Ordering::Relaxed))
    }

    /// Ranks currently in the given state, ascending.
    pub fn ranks_in(&self, state: RankState) -> Vec<usize> {
        (0..self.len())
            .filter(|&r| self.state(r) == state)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_accumulate_per_rank() {
        let b = HeartbeatBoard::new(3);
        b.beat(1);
        b.beat(1);
        b.beat(2);
        assert_eq!(b.all_beats(), vec![0, 2, 1]);
    }

    #[test]
    fn states_round_trip() {
        let b = HeartbeatBoard::new(4);
        assert_eq!(b.state(0), RankState::Running);
        b.set_state(1, RankState::Done);
        b.set_state(2, RankState::Dead);
        b.set_state(3, RankState::Quiesced);
        assert_eq!(b.state(1), RankState::Done);
        assert_eq!(b.state(2), RankState::Dead);
        assert_eq!(b.state(3), RankState::Quiesced);
        assert_eq!(b.ranks_in(RankState::Running), vec![0]);
        assert_eq!(b.ranks_in(RankState::Quiesced), vec![3]);
    }
}
