//! Ablation A1 — the three FOAM ocean throughput devices, toggled one at
//! a time on a fixed simulated interval:
//!
//! * slowed free surface (α = 16 vs α = 1),
//! * tracer subcycling (n_trac = 2 vs 1),
//! * the whole splitting (FOAM scheme vs unsplit gravity-wave stepping).
//!
//! The paper: the combination is "roughly a tenfold increase in the
//! amount of simulated time represented per unit of computation".

use criterion::{criterion_group, criterion_main, Criterion};
use foam_grid::World;
use foam_ocean::{OceanConfig, OceanForcing, OceanModel};
use std::hint::black_box;

const SIM: f64 = 21_600.0; // one coupling interval

fn run_case(c: &mut Criterion, name: &str, cfg: OceanConfig, unsplit: bool) {
    let world = World::earthlike();
    let model = OceanModel::new(cfg, &world);
    let state0 = model.init_state(&world);
    let forcing = OceanForcing::climatological(&model.grid, &world, &model.sst(&state0));
    c.bench_function(name, |b| {
        b.iter_batched(
            || state0.clone(),
            |mut st| {
                if unsplit {
                    black_box(model.step_unsplit(&mut st, &forcing, SIM))
                } else {
                    black_box(model.step_coupled(&mut st, &forcing, SIM))
                }
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_ablation(c: &mut Criterion) {
    // Reduced grid so Criterion can sample comfortably; ratios carry.
    let base = || OceanConfig {
        nx: 64,
        ny: 48,
        nz: 8,
        lat_max_deg: 70.0,
        ..OceanConfig::default()
    };

    run_case(c, "ocean_6h/foam_full_scheme", base(), false);

    let mut no_slow = base();
    no_slow.slowdown = 1.0; // external waves at full √(gH)
    run_case(c, "ocean_6h/no_slowed_surface", no_slow, false);

    let mut no_sub = base();
    no_sub.n_trac = 1; // tracers every internal step
    run_case(c, "ocean_6h/no_tracer_subcycle", no_sub, false);

    run_case(c, "ocean_6h/unsplit_baseline", base(), true);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation
}
criterion_main!(benches);
