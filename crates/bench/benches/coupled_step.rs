//! Experiment F2's quantitative companion: the cost of one coupled
//! simulated day, and its split between components, at the reduced
//! configuration (Criterion needs many repetitions; the full R15 day is
//! exercised by the `figure2_timeline` and `table1_scaling` binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use foam::{run_coupled, FoamConfig};
use foam_physics::radiation::{full_radiation, RadParams};
use foam_physics::AtmColumn;
use std::hint::black_box;

fn bench_coupled_day(c: &mut Criterion) {
    let cfg = FoamConfig::tiny(5);
    c.bench_function("coupled/one_simulated_day_tiny", |b| {
        b.iter(|| black_box(run_coupled(black_box(&cfg), 1.0)))
    });
}

fn bench_radiation_refresh(c: &mut Criterion) {
    // The "long atmosphere steps" of Figure 2: a full radiation
    // recomputation vs the cheap solar rescale.
    let col = AtmColumn::standard(18, 295.0);
    let p = RadParams::default();
    c.bench_function("physics/full_radiation_18lev", |b| {
        b.iter(|| black_box(full_radiation(black_box(&col), 296.0, 0.07, &p)))
    });
    let cache = full_radiation(&col, 296.0, 0.07, &p);
    c.bench_function("physics/cached_heating_18lev", |b| {
        b.iter(|| {
            let mut s = 0.0;
            for k in 0..18 {
                s += cache.heating(k, black_box(0.6));
            }
            black_box(s)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_coupled_day, bench_radiation_refresh
}
criterion_main!(benches);
