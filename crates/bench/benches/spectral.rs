//! Ablation A3 — spectral transform costs: the FFT against a naive DFT,
//! and the full R15 analysis/synthesis/Jacobian pipeline whose global
//! communication structure the paper highlights.

use criterion::{criterion_group, criterion_main, Criterion};
use foam_grid::{AtmGrid, Field2};
use foam_spectral::fft::{real_analysis, Complex, FftPlan};
use foam_spectral::{SpectralField, SphericalTransform, Truncation};
use std::hint::black_box;

fn naive_dft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &v) in x.iter().enumerate() {
                acc += v * Complex::cis(-2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64);
            }
            acc
        })
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_vs_dft");
    for n in [48usize, 128] {
        let plan = FftPlan::new(n);
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        g.bench_function(format!("fft_{n}"), |b| {
            b.iter(|| black_box(plan.forward(black_box(&x))))
        });
        g.bench_function(format!("naive_dft_{n}"), |b| {
            b.iter(|| black_box(naive_dft(black_box(&x))))
        });
    }
    g.finish();
}

fn bench_transform(c: &mut Criterion) {
    let t = SphericalTransform::r15();
    let mut spec = SpectralField::zeros(Truncation::r15());
    for (i, (m, n)) in Truncation::r15().pairs().enumerate() {
        spec.set(
            m,
            n,
            Complex::new((i as f64 * 0.1).sin(), (i as f64 * 0.05).cos()),
        );
    }
    let grid_field = t.synthesize(&spec);

    let mut g = c.benchmark_group("r15_transform");
    g.bench_function("analysis", |b| {
        b.iter(|| black_box(t.analyze(black_box(&grid_field))))
    });
    g.bench_function("synthesis", |b| {
        b.iter(|| black_box(t.synthesize(black_box(&spec))))
    });
    g.bench_function("row_fourier_analysis", |b| {
        let plan = FftPlan::new(48);
        let row: Vec<f64> = grid_field.row(20).to_vec();
        b.iter(|| black_box(real_analysis(&plan, black_box(&row), 15)))
    });
    g.finish();
}

fn bench_field_roundtrip(c: &mut Criterion) {
    // The per-tracer cost of the atmosphere: analysis + synthesis of a
    // grid field (two of the seven transforms in one advection step).
    let t = SphericalTransform::r15();
    let f = Field2::from_fn(48, 40, |i, j| ((i + 2 * j) as f64 * 0.21).sin());
    let grid = AtmGrid::r15();
    let _ = grid;
    c.bench_function("r15_roundtrip_per_tracer", |b| {
        b.iter(|| {
            let s = t.analyze(black_box(&f));
            black_box(t.synthesize(&s))
        })
    });
}

criterion_group!(benches, bench_fft, bench_transform, bench_field_roundtrip);
criterion_main!(benches);
