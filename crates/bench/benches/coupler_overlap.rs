//! Ablation A2 — the overlap grid (paper Fig. 1) against naive
//! nearest-neighbour regridding: construction cost, per-exchange cost,
//! and — the reason FOAM bothers — the flux conservation error, printed
//! once at startup, together with the per-tag communication profile of
//! a short coupled run (what actually crosses the coupler boundary).

use criterion::{criterion_group, criterion_main, Criterion};
use foam_grid::{AtmGrid, Field2, NearestNeighbour, OceanGrid, OverlapGrid, World};
use std::hint::black_box;

fn setup() -> (AtmGrid, OceanGrid, Vec<bool>) {
    let world = World::earthlike();
    let atm = AtmGrid::r15();
    let ocn = OceanGrid::foam_default();
    let mask = world.ocean_sea_mask(&ocn);
    (atm, ocn, mask)
}

fn report_conservation() {
    let (atm, ocn, mask) = setup();
    let ov = OverlapGrid::build(&atm, &ocn, &mask);
    let nn = NearestNeighbour::build(&atm, &ocn, &mask);
    // A realistic heat-flux-like field on the ocean grid.
    let f = Field2::from_fn(ocn.nx, ocn.ny, |i, j| {
        100.0 * (ocn.lats[j]).cos() + 30.0 * ((i as f64) * 0.4).sin()
    });
    let truth = ov.integral_ocean(&f);
    let cons = ov.integral_atm_sea(&ov.ocean_to_atm(&f));
    let naive = ov.integral_atm_sea(&nn.ocean_to_atm(&f));
    println!("--- A2 conservation check (global flux integral, W) ---");
    println!("  ocean-side truth     : {truth:+.6e}");
    println!(
        "  overlap-grid regrid  : {cons:+.6e}  (rel err {:.2e})",
        ((cons - truth) / truth).abs()
    );
    println!(
        "  nearest-neighbour    : {naive:+.6e}  (rel err {:.2e})",
        ((naive - truth) / truth).abs()
    );
}

fn report_exchange_traffic() {
    // One simulated day at demo resolution: enough exchanges for the
    // forcing/SST counters to show the protocol's shape.
    let cfg = foam::FoamConfig::tiny(7);
    let out = foam::run_coupled(&cfg, 1.0);
    println!("--- A2 coupled-exchange traffic (1 simulated day, tiny config) ---");
    println!("{}", foam::diagnostics::comm_stats_report(&out.traces));
    print!("{}", out.comm_lint);
}

fn bench_overlap(c: &mut Criterion) {
    report_conservation();
    report_exchange_traffic();
    let (atm, ocn, mask) = setup();
    c.bench_function("overlap/build_r15_x_128", |b| {
        b.iter(|| black_box(OverlapGrid::build(&atm, &ocn, &mask)))
    });
    let ov = OverlapGrid::build(&atm, &ocn, &mask);
    let f_ocn = Field2::from_fn(ocn.nx, ocn.ny, |i, j| {
        (i as f64 * 0.3).sin() + j as f64 * 0.01
    });
    let f_atm = Field2::from_fn(atm.nlon, atm.nlat, |i, j| {
        (j as f64 * 0.2).cos() + i as f64 * 0.02
    });
    c.bench_function("overlap/ocean_to_atm", |b| {
        b.iter(|| black_box(ov.ocean_to_atm(black_box(&f_ocn))))
    });
    c.bench_function("overlap/atm_to_ocean", |b| {
        b.iter(|| black_box(ov.atm_to_ocean(black_box(&f_atm))))
    });
    c.bench_function("overlap/flux_on_overlap", |b| {
        b.iter(|| black_box(ov.compute_on_overlap(|ka, ko| (ka % 7) as f64 - (ko % 5) as f64)))
    });
    let nn = NearestNeighbour::build(&atm, &ocn, &mask);
    c.bench_function("nearest_neighbour/ocean_to_atm", |b| {
        b.iter(|| black_box(nn.ocean_to_atm(black_box(&f_ocn))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_overlap
}
criterion_main!(benches);
