//! `foam-bench` — the experiment harness.
//!
//! One binary per table/figure of the paper (see DESIGN.md §3 and
//! EXPERIMENTS.md for the index), plus Criterion micro-benches for the
//! component-level ablations:
//!
//! | target | artifact |
//! |--------|----------|
//! | `figure2_timeline` | Fig. 2 — per-processor time allocation |
//! | `figure3_sst` | Fig. 3 — SST: model vs observations vs difference |
//! | `figure4_variability` | Fig. 4 — VARIMAX EOF of low-passed SST |
//! | `table1_scaling` | §5 — model speedup vs node count |
//! | `table2_baseline` | §5 — FOAM vs CSM-like baseline |
//! | bench `ocean_ablation` | A1 — slowed/split/subcycled ocean options |
//! | bench `coupler_overlap` | A2 — overlap grid vs naive regridding |
//! | bench `spectral` | A3 — transform costs |
//!
//! Shared helpers for the binaries live here.

use foam_grid::{Field2, OceanGrid, World};
use foam_ocean::{OceanConfig, OceanModel};

/// Parse a CLI argument by position with a default.
pub fn arg_or<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Parse a `--name <value>` CLI flag with a default.
pub fn flag_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The synthetic observed-SST field ("Figure 3b") on the ocean grid.
pub fn observed_sst(cfg: &OceanConfig, world: &World) -> (OceanGrid, Vec<bool>, Field2) {
    let grid = OceanGrid::mercator(cfg.nx, cfg.ny, cfg.lat_max_deg);
    let mask = OceanModel::effective_sea_mask(cfg, world);
    let f = Field2::from_fn(grid.nx, grid.ny, |i, j| {
        if mask[grid.idx(i, j)] {
            world.sst_climatology(grid.lons[i], grid.lats[j])
        } else {
            0.0
        }
    });
    (grid, mask, f)
}

/// Area weights (0 on land) for statistics on the ocean grid.
pub fn sea_weights(grid: &OceanGrid, mask: &[bool]) -> Vec<f64> {
    (0..grid.len())
        .map(|k| {
            if mask[k] {
                grid.cell_area(k % grid.nx, k / grid.nx)
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_sst_is_masked_and_warm_at_equator() {
        let world = World::earthlike();
        let cfg = OceanConfig::tiny();
        let (grid, mask, sst) = observed_sst(&cfg, &world);
        let jm = grid.ny / 2;
        let mut saw = false;
        for i in 0..grid.nx {
            if mask[grid.idx(i, jm)] {
                assert!(sst.get(i, jm) > 20.0);
                saw = true;
            }
        }
        assert!(saw);
    }

    #[test]
    fn flag_or_falls_back_when_flag_is_absent() {
        // The test harness's argv carries no such flag, so the default
        // must come back (and must not panic on a flag-less argv tail).
        assert_eq!(flag_or("--no-such-flag", 1914u64), 1914);
        assert_eq!(flag_or("--no-such-flag", 2.5f64), 2.5);
    }

    #[test]
    fn sea_weights_vanish_on_land() {
        let world = World::earthlike();
        let cfg = OceanConfig::tiny();
        let (grid, mask, _) = observed_sst(&cfg, &world);
        let w = sea_weights(&grid, &mask);
        for k in 0..grid.len() {
            assert_eq!(w[k] > 0.0, mask[k]);
        }
    }
}
