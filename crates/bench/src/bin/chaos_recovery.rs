//! The chaos-smoke campaign behind CI's `BENCH_chaos_recovery.json`
//! artifact: one seeded end-to-end run through the **full fault
//! matrix** — comm delay + drop (exchange timeout), a torn checkpoint
//! write the rollback must fall back over, and a NaN physics blow-up —
//! supervised by [`foam::supervisor::supervise_run`].
//!
//! ```sh
//! cargo run --release -p foam-bench --bin chaos_recovery \
//!     [--days D] [--seed S] [--out PATH]
//! ```
//!
//! The binary *asserts* the self-healing contract (and thus fails CI
//! when it breaks):
//!
//! 1. the supervised chaos run **completes** despite every fault;
//! 2. its final state is **bit-identical** to a fault-free run of the
//!    same configuration and seed;
//! 3. rerunning the identical campaign yields a **byte-identical**
//!    recovery record (no wall-clock leaks into the report).
//!
//! The artifact embeds the `foam-recovery/1` record — faults seen,
//! rollbacks taken, simulated days replayed — for the CI job to
//! validate and archive.

use std::path::{Path, PathBuf};

use foam::supervisor::{supervise_run, SupervisedOutput, SupervisorConfig};
use foam::{
    try_run_coupled, Backoff, CkptConfig, CoupledOutput, FoamConfig, PhysicsFault,
    PhysicsFaultKind, StoreFaultPlan,
};
use foam_bench::flag_or;
use foam_coupler::tags::TAG_SST;
use foam_mpi::{FaultAction, FaultPlan, FaultRule};
use foam_telemetry::json::Value;

/// Comm chaos on the SST exchange: the first `hits` messages arrive
/// (with a small injected delay — latency the retry protocol absorbs),
/// every later one is dropped, including retransmissions, until the
/// exchange's retry budget gives out.
fn delay_then_drop_sst(seed: u64, hits: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_rule(FaultRule {
            src: None,
            dst: None,
            tag: Some(TAG_SST),
            action: FaultAction::Delay(0.01),
            max_hits: Some(hits),
            probability: 1.0,
        })
        .with_rule(FaultRule {
            src: None,
            dst: None,
            tag: Some(TAG_SST),
            action: FaultAction::Drop,
            max_hits: None,
            probability: 1.0,
        })
}

/// The chaos configuration: checkpoints every 2 intervals, a lossy
/// exchange from interval ~4, a torn write sabotaging the interval-4
/// snapshot, and a NaN blowing up the physics at interval 6.
fn chaos_config(seed: u64, dir: &Path) -> FoamConfig {
    let mut cfg = FoamConfig::tiny(seed);
    cfg.ckpt = CkptConfig {
        dir: Some(dir.to_path_buf()),
        interval: 2,
        keep: 3,
        on_error: false,
        fault_plan: Some(StoreFaultPlan::new().torn_write(4)),
    };
    cfg.runtime.sst_retry_timeout_secs = 0.3;
    cfg.runtime.sst_retry_backoff_secs = 0.02;
    cfg.runtime.sst_retry_max = 2;
    // Initial SST + intervals 0..=3 delivered; the drop begins while
    // the interval-2 and (torn) interval-4 snapshots are already down.
    cfg.runtime.fault_plan = Some(delay_then_drop_sst(seed, 5));
    cfg.runtime.physics_fault = Some(PhysicsFault {
        interval: 6,
        kind: PhysicsFaultKind::Nan,
    });
    cfg
}

fn run_campaign(seed: u64, days: f64, dir: &Path) -> SupervisedOutput {
    let _ = std::fs::remove_dir_all(dir);
    let cfg = chaos_config(seed, dir);
    let sup = SupervisorConfig {
        max_recoveries: 4,
        backoff: Backoff::capped(0.01, 0.1),
    };
    let out = supervise_run(&cfg, days, &sup).expect("the supervised chaos run must complete");
    let _ = std::fs::remove_dir_all(dir);
    out
}

fn assert_bit_identical(a: &CoupledOutput, b: &CoupledOutput) {
    assert_eq!(a.mean_sst_series.len(), b.mean_sst_series.len());
    for (x, y) in a.mean_sst_series.iter().zip(&b.mean_sst_series) {
        assert_eq!(x.to_bits(), y.to_bits(), "mean-SST series diverged");
    }
    for (x, y) in a.final_sst.as_slice().iter().zip(b.final_sst.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "final SST field diverged");
    }
    assert_eq!(
        a.ice_fraction.to_bits(),
        b.ice_fraction.to_bits(),
        "ice fraction diverged"
    );
}

fn main() {
    let days: f64 = flag_or("--days", 2.0);
    let seed: u64 = flag_or("--seed", 91);
    let out_path: String = flag_or("--out", "BENCH_chaos_recovery.json".to_string());

    println!("=== chaos-recovery campaign ({days} simulated days, seed {seed}) ===\n");
    println!("faults: SST delay+drop from hit 5, torn ckpt write @4, NaN blow-up @6");

    let scratch: PathBuf =
        std::env::temp_dir().join(format!("foam-chaos-{seed}-{}", std::process::id()));

    println!("\n[1/3] fault-free reference run");
    let clean = try_run_coupled(&FoamConfig::tiny(seed), days).expect("reference run");

    println!("[2/3] supervised chaos run");
    let chaos = run_campaign(seed, days, &scratch);
    assert!(
        chaos.recovery.rollbacks() >= 2,
        "the campaign must actually trip multiple fault classes (got {:?})",
        chaos.recovery.events
    );
    assert_bit_identical(&chaos.output, &clean);
    println!(
        "      recovered: {} faults, {} rollbacks, {:.2} sim-days replayed",
        chaos.recovery.faults_seen(),
        chaos.recovery.rollbacks(),
        chaos.recovery.sim_days_replayed
    );
    for e in &chaos.recovery.events {
        println!("      - {} -> {:?}", e.fault, e.action);
    }
    println!("      final state bit-identical to the fault-free run");

    println!("[3/3] identical rerun: the recovery record must not drift");
    let rerun = run_campaign(seed, days, &scratch);
    let record = chaos.recovery.to_json().to_string_pretty();
    assert_eq!(
        record,
        rerun.recovery.to_json().to_string_pretty(),
        "recovery record differs between identical campaigns"
    );
    assert_bit_identical(&rerun.output, &clean);
    println!("      byte-identical across reruns\n");

    let doc = Value::object([
        ("schema".to_string(), "foam-bench/chaos-recovery/1".into()),
        ("days".to_string(), days.into()),
        ("seed".to_string(), seed.into()),
        (
            "faults_seen".to_string(),
            (chaos.recovery.faults_seen() as u64).into(),
        ),
        (
            "rollbacks".to_string(),
            (chaos.recovery.rollbacks() as u64).into(),
        ),
        (
            "sim_days_replayed".to_string(),
            chaos.recovery.sim_days_replayed.into(),
        ),
        ("bit_identical_to_clean".to_string(), Value::Bool(true)),
        ("recovery_deterministic".to_string(), Value::Bool(true)),
        ("recovery".to_string(), chaos.recovery.to_json()),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty()).expect("write the bench artifact");
    println!("wrote {out_path}");
}
