//! Experiment C — the century-throughput bench behind CI's
//! `BENCH_century.json` artifact: 100 simulated years pushed through the
//! full coupled pipeline with **streaming** statistics, demonstrating
//! that the Figure-3/4 diagnostics come out of a run whose statistics
//! memory is `O(grid)` — independent of the number of simulated months.
//!
//! ```sh
//! cargo run --release -p foam-bench --bin century \
//!     [--years Y] [--seed S] [--eof-rank R] [--out PATH]
//! ```
//!
//! The artifact records wall-clock, model speedup, the streamed month
//! count, the leading VARIMAX mode's variance share, the two-basin
//! correlation, and a peak-heap proxy from
//! [`foam_telemetry::alloc::CountingAlloc`] (installed as this binary's
//! global allocator) together with the encoded size of the stream state
//! itself — the number that must stay flat as `--years` grows. CI runs
//! the 1-year scaled-down variant (`century-smoke`) and gates on a
//! throughput regression against the committed 100-year artifact.

use std::sync::Mutex;

use foam::{
    try_run_coupled_observed, FoamConfig, ProgressEvent, RunObserver, TelemetryConfig, World,
};
use foam_bench::flag_or;
use foam_ckpt::Codec;
use foam_grid::{Basin, OceanGrid};
use foam_telemetry::alloc::{CountingAlloc, SteadyMeter};
use foam_telemetry::json::Value;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Opens a [`SteadyMeter`] once the run passes its warm-up interval, so
/// the artifact can report *steady-state* allocations per simulated
/// year — excluding setup (workspace construction, spectral tables,
/// initial states), which is one-off and allowed to allocate freely.
struct SteadyWatch {
    /// First coupling interval considered steady (1-based).
    warmup: usize,
    /// The interval the meter actually opened at, and the meter.
    meter: Mutex<Option<(usize, SteadyMeter)>>,
}

impl RunObserver for SteadyWatch {
    fn on_interval(&self, ev: &ProgressEvent) {
        if ev.interval >= self.warmup {
            let mut g = self.meter.lock().expect("steady meter lock");
            if g.is_none() {
                *g = Some((ev.interval, SteadyMeter::begin()));
            }
        }
    }
}

/// Area-weighted box profile over one basin, 25–60°N (the Figure-4
/// two-basin diagnostic), normalized to a box *mean*.
fn basin_profile(
    grid: &OceanGrid,
    world: &World,
    weights: &[f64],
    basin: Basin,
) -> Option<Vec<f64>> {
    let mut profile = vec![0.0; weights.len()];
    let mut den = 0.0;
    for (s, p) in profile.iter_mut().enumerate() {
        if weights[s] > 0.0 {
            let (i, j) = (s % grid.nx, s / grid.nx);
            if world.basin(grid.lons[i], grid.lats[j]) == basin
                && (25.0..60.0).contains(&grid.lats[j].to_degrees())
            {
                *p = weights[s];
                den += weights[s];
            }
        }
    }
    (den > 0.0).then(|| {
        for p in profile.iter_mut() {
            *p /= den;
        }
        profile
    })
}

fn main() {
    let years: f64 = flag_or("--years", 100.0);
    let seed: u64 = flag_or("--seed", 1914);
    let eof_rank: usize = flag_or("--eof-rank", 8);
    let out_path: String = flag_or("--out", "BENCH_century.json".to_string());

    println!("=== century-throughput bench ({years} simulated years, streaming statistics) ===\n");
    let mut cfg = FoamConfig::century(seed);
    if let Some(s) = cfg.stream.as_mut() {
        s.eof_rank = eof_rank;
    }
    cfg.telemetry = TelemetryConfig {
        enabled: true,
        path: None,
    };

    // Steady-state window: everything after the first simulated year
    // (or the second half of a sub-year smoke run) counts; the warm-up
    // absorbs the one-off setup allocations.
    let n_intervals = ((years * 360.0 * 86_400.0) / cfg.dt_couple).round() as usize;
    let intervals_per_year = ((360.0 * 86_400.0) / cfg.dt_couple).round() as usize;
    let watch = SteadyWatch {
        warmup: intervals_per_year.min(n_intervals / 2).max(1),
        meter: Mutex::new(None),
    };

    CountingAlloc::reset_peak();
    let baseline = CountingAlloc::stats();
    let out = try_run_coupled_observed(&cfg, years * 360.0, &watch)
        .unwrap_or_else(|e| panic!("coupled run failed: {e}"));
    // Read the steady window before the analysis below churns the heap.
    let steady = watch
        .meter
        .lock()
        .expect("steady meter lock")
        .map(|(opened_at, meter)| {
            let intervals = n_intervals.saturating_sub(opened_at);
            let steady_years = intervals as f64 * cfg.dt_couple / (360.0 * 86_400.0);
            (steady_years, meter.so_far())
        });
    let alloc = CountingAlloc::stats();

    let stream = out.stream.as_ref().expect("century config streams");
    let months = stream.months();
    let grid = foam_grid::OceanGrid::mercator(cfg.ocean.nx, cfg.ocean.ny, cfg.ocean.lat_max_deg);
    let stream_bytes = stream.to_bytes().len();
    println!(
        "integrated {:.1} years at {:.0}× real time ({:.1} s wall)",
        out.sim_seconds / (360.0 * 86_400.0),
        out.model_speedup,
        out.wall_seconds
    );
    println!(
        "streamed {months} months into {stream_bytes} bytes of statistics state \
         ({} grid points; discarded variability fraction {:.2e})",
        grid.len(),
        stream.discarded_fraction()
    );
    println!(
        "peak heap {:.1} MiB (live at end {:.1} MiB, {} allocations)",
        (alloc.peak_bytes - baseline.live_bytes.min(alloc.peak_bytes)) as f64 / (1 << 20) as f64,
        alloc.live_bytes as f64 / (1 << 20) as f64,
        alloc.allocations - baseline.allocations,
    );
    if let Some((sy, d)) = steady {
        let rate = d.per(sy);
        println!(
            "steady state: {:.3e} allocations/yr ({:.1} MiB/yr) over the final {:.2} simulated years",
            rate.allocations,
            rate.total_bytes / (1 << 20) as f64,
            sy,
        );
    }

    // --- Figure-4 analysis straight off the stream. ---------------------
    let (mut leading_varfrac, mut basin_corr) = (Value::Null, Value::Null);
    if let Some(analysis) = stream.analyze_variability(6) {
        let rot = analysis.varimax(4.min(analysis.eof.patterns.len()));
        if !rot.variance_fraction.is_empty() {
            println!(
                "leading VARIMAX mode: {:.1} % of low-passed variance (paper: 15 %)",
                100.0 * rot.variance_fraction[0]
            );
            leading_varfrac = rot.variance_fraction[0].into();
        }
        let world = World::earthlike();
        let w = stream.weights();
        if let (Some(na), Some(np)) = (
            basin_profile(&grid, &world, w, Basin::Atlantic),
            basin_profile(&grid, &world, w, Basin::Pacific),
        ) {
            let r = foam_stats::correlation(&analysis.series(&na), &analysis.series(&np));
            println!("North Atlantic × North Pacific low-passed SST correlation: r = {r:.2}");
            basin_corr = r.into();
        }
    }

    let report = out.telemetry.as_ref().expect("telemetry was enabled");
    let doc = Value::object([
        ("schema".to_string(), "foam-bench/century/1".into()),
        ("years".to_string(), years.into()),
        ("seed".to_string(), seed.into()),
        ("sim_seconds".to_string(), out.sim_seconds.into()),
        ("wall_seconds".to_string(), out.wall_seconds.into()),
        ("model_speedup".to_string(), out.model_speedup.into()),
        ("months_streamed".to_string(), (months as u64).into()),
        ("grid_points".to_string(), (grid.len() as u64).into()),
        (
            "stream_state_bytes".to_string(),
            (stream_bytes as u64).into(),
        ),
        (
            "discarded_fraction".to_string(),
            stream.discarded_fraction().into(),
        ),
        (
            "final_mean_sst".to_string(),
            out.final_mean_sst()
                .map(Value::Number)
                .unwrap_or(Value::Null),
        ),
        ("leading_varimax_varfrac".to_string(), leading_varfrac),
        ("basin_correlation".to_string(), basin_corr),
        (
            "alloc".to_string(),
            Value::object([
                ("peak_bytes".to_string(), alloc.peak_bytes.into()),
                ("live_bytes_end".to_string(), alloc.live_bytes.into()),
                ("total_bytes".to_string(), alloc.total_bytes.into()),
                ("allocations".to_string(), alloc.allocations.into()),
                (
                    "steady_years".to_string(),
                    steady
                        .map(|(sy, _)| Value::Number(sy))
                        .unwrap_or(Value::Null),
                ),
                (
                    "steady_allocations".to_string(),
                    steady
                        .map(|(_, d)| Value::Number(d.allocations as f64))
                        .unwrap_or(Value::Null),
                ),
                (
                    "steady_allocs_per_year".to_string(),
                    steady
                        .map(|(sy, d)| Value::Number(d.per(sy).allocations))
                        .unwrap_or(Value::Null),
                ),
                (
                    "steady_bytes_per_year".to_string(),
                    steady
                        .map(|(sy, d)| Value::Number(d.per(sy).total_bytes))
                        .unwrap_or(Value::Null),
                ),
            ]),
        ),
        (
            "telemetry_model_speedup".to_string(),
            report.model_speedup.into(),
        ),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty()).expect("write the bench artifact");
    println!("\nwrote {out_path}");
}
