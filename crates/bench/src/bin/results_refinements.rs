//! Experiment §6 — "Results and Refinements": the paper reports that the
//! first FOAM runs, with CCM2 physics, represented the tropical Pacific
//! poorly, and that adopting the CCM3 moist physics (deep convection,
//! re-evaporation of stratiform rain, wind-dependent ocean roughness)
//! "vastly improved its representation of the tropical Pacific".
//!
//! We run the same coupled model twice — once per physics vintage — and
//! compare the tropical-Pacific SST error against the climatology.
//!
//! ```sh
//! cargo run --release -p foam-bench --bin results_refinements [days]
//! ```

use foam::{run_coupled, FoamConfig, OceanModel, World};
use foam_bench::{arg_or, observed_sst};
use foam_grid::Basin;
use foam_physics::PhysicsConfig;
use foam_stats::pattern_stats;

fn main() {
    let days: f64 = arg_or(1, 30.0);
    println!("=== §6 Results and Refinements: CCM2 vs CCM3 physics ===");
    println!("two coupled runs of {days} simulated days, identical but for the moist physics\n");

    let world = World::earthlike();
    let base = FoamConfig::paper(4, 1996);
    let (grid, mask, obs) = observed_sst(&base.ocean, &world);
    let _ = OceanModel::effective_sea_mask(&base.ocean, &world);

    // Weights restricted to the tropical Pacific (the paper's region of
    // concern: the cold-tongue / warm-pool structure, El Niño country).
    let w_tropical_pacific: Vec<f64> = (0..grid.len())
        .map(|k| {
            let (i, j) = (k % grid.nx, k / grid.nx);
            let latd = grid.lats[j].to_degrees();
            if mask[k]
                && latd.abs() < 15.0
                && world.basin(grid.lons[i], grid.lats[j]) == Basin::Pacific
            {
                grid.cell_area(i, j)
            } else {
                0.0
            }
        })
        .collect();

    let mut report = Vec::new();
    for (label, phys) in [
        ("CCM2 physics (original)", PhysicsConfig::ccm2()),
        ("CCM3 physics (adopted) ", PhysicsConfig::default()),
    ] {
        let mut cfg = base.clone();
        cfg.atm.physics = phys;
        let out = run_coupled(&cfg, days);
        let stats = pattern_stats(
            out.final_sst.as_slice(),
            obs.as_slice(),
            &w_tropical_pacific,
        );
        println!(
            "{label}: tropical-Pacific SST bias {:+.2} °C, RMSE {:.2} °C, \
             mean SST {:.2} °C ({:.0}× real time)",
            stats.bias,
            stats.rmse,
            out.mean_sst_series.last().unwrap(),
            out.model_speedup
        );
        report.push(stats.rmse);
    }
    println!();
    if report[1] < report[0] {
        println!(
            "CCM3 physics improves the tropical Pacific by {:.0} % in RMSE — the paper's §6 \
             finding reproduced in direction.",
            100.0 * (1.0 - report[1] / report[0])
        );
    } else {
        println!(
            "CCM3 RMSE {:.2} vs CCM2 {:.2}: improvement not resolved at this run length — \
             lengthen the run (the paper's comparison is multi-year).",
            report[1], report[0]
        );
    }
}
