//! Experiment MS — the model-speedup bench behind CI's
//! `BENCH_model_speedup.json` artifact: a short coupled integration at
//! two atmosphere rank counts, reduced through `foam-telemetry`. The
//! artifact carries, per run, the full telemetry report — model speedup,
//! the per-phase wall-clock breakdown (Figure 2 categories), and the
//! per-rank load-imbalance summary. CI asserts the JSON parses and the
//! measured speedup is positive.
//!
//! ```sh
//! cargo run --release -p foam-bench --bin model_speedup \
//!     [--days D] [--out PATH]
//! ```
//!
//! The reduced `tiny` configuration keeps the bench fast enough for CI;
//! `table1_scaling` covers the paper-resolution sweep.

use foam::{run_coupled, FoamConfig, TelemetryConfig};
use foam_bench::flag_or;
use foam_telemetry::json::Value;

fn main() {
    let days: f64 = flag_or("--days", 0.25);
    let out_path: String = flag_or("--out", "BENCH_model_speedup.json".to_string());

    println!("=== model-speedup bench (telemetry reduction) ===\n");
    let mut runs = Vec::new();
    let mut best = 0.0f64;
    for n_atm in [1usize, 2] {
        let mut cfg = FoamConfig::tiny(42);
        cfg.n_atm_ranks = n_atm;
        cfg.telemetry = TelemetryConfig {
            enabled: true,
            path: None,
        };
        let out = run_coupled(&cfg, days);
        let report = out.telemetry.expect("telemetry was enabled");
        println!(
            "{n_atm} atm rank(s) + 1 ocean: {:.0}× real time measured, \
             {:.0}× projected parallel, busy-time imbalance {:.2}",
            report.model_speedup,
            report.projected_speedup(),
            report.load_imbalance().map_or(1.0, |i| i.ratio()),
        );
        assert!(
            report.tree_consistent(1e-6),
            "phase tree inconsistent at {n_atm} atm ranks"
        );
        best = best.max(report.model_speedup);
        runs.push(Value::object([
            ("n_atm_ranks".to_string(), n_atm.into()),
            (
                "projected_speedup".to_string(),
                report.projected_speedup().into(),
            ),
            ("report".to_string(), report.to_json()),
        ]));
    }
    let doc = Value::object([
        ("schema".to_string(), "foam-bench/model-speedup/1".into()),
        ("days".to_string(), days.into()),
        ("model_speedup".to_string(), best.into()),
        ("runs".to_string(), Value::Array(runs)),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty()).expect("write the bench artifact");
    println!("\nwrote {out_path} (best measured model speedup: {best:.0}× real time)");
}
