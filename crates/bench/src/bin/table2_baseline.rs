//! Experiment T2 — the paper's comparison against contemporary coupled
//! models: "The performance of FOAM can be compared directly to the NCAR
//! CSM coupled model which accomplishes only a third of FOAM's maximum
//! throughput using 16 nodes of a Cray C90", with the ocean formulation
//! alone worth "roughly a tenfold increase in the amount of simulated
//! time represented per unit of computation".
//!
//! We isolate exactly the devices the paper credits by running the same
//! physics twice:
//! * **FOAM**: slowed + mode-split + subcycled ocean, lagged coupling;
//! * **baseline (CSM-like)**: unsplit ocean stepping at the full
//!   gravity-wave CFL, sequential (blocking) coupling.
//!
//! ```sh
//! cargo run --release -p foam-bench --bin table2_baseline [days] [n_atm_ranks]
//! ```

use foam::{baseline_config, run_coupled, FoamConfig};
use foam_bench::arg_or;
use foam_grid::World;
use foam_ocean::{OceanConfig, OceanForcing, OceanModel};
use std::time::Instant;

fn main() {
    let days: f64 = arg_or(1, 0.5);
    let n_atm: usize = arg_or(2, 4);

    println!("=== Table 2: FOAM vs CSM-like baseline ===\n");

    // ---- Ocean formulation in isolation (the 10× claim). --------------
    let world = World::earthlike();
    let ocfg = OceanConfig::default();
    let model = OceanModel::new(ocfg.clone(), &world);
    let forcing = {
        let st = model.init_state(&world);
        OceanForcing::climatological(&model.grid, &world, &model.sst(&st))
    };
    let sim = 86_400.0; // one simulated day each way
    let mut st_a = model.init_state(&world);
    let t0 = Instant::now();
    let work_split = model.step_coupled(&mut st_a, &forcing, sim);
    let wall_split = t0.elapsed().as_secs_f64();
    let mut st_b = model.init_state(&world);
    let t0 = Instant::now();
    let work_unsplit = model.step_unsplit(&mut st_b, &forcing, sim);
    let wall_unsplit = t0.elapsed().as_secs_f64();
    println!("ocean formulation alone (one simulated day, 128×128×16):");
    println!(
        "  FOAM split/slowed/subcycled : {wall_split:>8.2} s wall, {work_split:>8} work units"
    );
    println!(
        "  unsplit gravity-wave CFL    : {wall_unsplit:>8.2} s wall, {work_unsplit:>8} work units"
    );
    println!(
        "  → ocean cost ratio {:.1}× wall, {:.1}× work   [paper: ≈10× fewer FLOPs per simulated time]\n",
        wall_unsplit / wall_split.max(1e-9),
        work_unsplit as f64 / work_split.max(1) as f64
    );

    // ---- Full coupled comparison. --------------------------------------
    println!("full coupled model ({days} simulated days, {n_atm} atm ranks + 1 ocean):");
    let cfg = FoamConfig::paper(n_atm, 3);
    let foam_out = run_coupled(&cfg, days);
    let base_out = run_coupled(&baseline_config(&cfg), days);
    println!(
        "  FOAM    (lagged + split ocean)   : {:>8.2} s wall → {:>8.0}× real time",
        foam_out.wall_seconds, foam_out.model_speedup
    );
    println!(
        "  baseline (sequential + unsplit)  : {:>8.2} s wall → {:>8.0}× real time",
        base_out.wall_seconds, base_out.model_speedup
    );
    let ratio = foam_out.model_speedup / base_out.model_speedup.max(1e-9);
    println!(
        "  → FOAM throughput advantage {ratio:.1}×   [paper: ≥3× the NCAR CSM throughput, \
         ≥10× its cost-performance]"
    );
    // Sanity: both runs end in the same climate state ballpark.
    let a = foam_out.mean_sst_series.last().unwrap();
    let b = base_out.mean_sst_series.last().unwrap();
    println!(
        "  (fidelity check: final mean SST {a:.2} °C vs {b:.2} °C — same physics, \
         different numerics)"
    );
}
