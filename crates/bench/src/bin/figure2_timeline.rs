//! Experiment F2 — regenerate the paper's **Figure 2**: "Time allocation
//! for a typical FOAM run. Each bar represents a single SP processor.
//! Green sections represent atmosphere calculations, red: coupler code,
//! blue: ocean, and purple: idle time."
//!
//! Here: `A` = atmosphere, `C` = coupler, `O` = ocean, `.` = idle/wait.
//! One simulated day on the paper's 17-node layout (16 atmosphere +
//! 1 ocean) by default; the ocean is called four times (6-h coupling) and
//! the radiation recomputation twice a day makes two atmosphere steps
//! visibly longer, exactly as in the original figure.
//!
//! ```sh
//! cargo run --release -p foam-bench --bin figure2_timeline [n_atm_ranks] [days]
//! ```

use foam::diagnostics::comm_stats_report;
use foam::{run_coupled, FoamConfig, TraceSummary};
use foam_bench::arg_or;

fn main() {
    let n_atm: usize = arg_or(1, 16);
    let days: f64 = arg_or(2, 1.0);
    let mut cfg = FoamConfig::paper(n_atm, 42);
    cfg.tracing = true;

    println!("=== Figure 2: per-processor time allocation ===");
    println!(
        "{} atmosphere ranks + 1 ocean rank, {days} simulated day(s), R15 atmosphere / 128×128×16 ocean\n",
        n_atm
    );
    let out = run_coupled(&cfg, days);

    // Common time window across ranks.
    let t0 = out
        .traces
        .iter()
        .filter_map(|t| t.segments.first().map(|s| s.start))
        .fold(f64::INFINITY, f64::min);
    let t1 = out
        .traces
        .iter()
        .flat_map(|t| t.segments.iter().map(|s| s.end))
        .fold(0.0f64, f64::max);

    let width = 100;
    println!(
        "timeline ({:.2} s wall; A = atmosphere, C = coupler, O = ocean, . = idle):\n",
        t1 - t0
    );
    for (r, trace) in out.traces.iter().enumerate() {
        let label = if r < n_atm {
            format!("atm {r:>2}")
        } else {
            "ocean ".to_string()
        };
        println!("{label} |{}|", trace.ascii_bar(t0, t1, width));
    }

    println!("\nper-rank totals (seconds):");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "rank", "atm", "coupler", "ocean", "idle"
    );
    for (r, trace) in out.traces.iter().enumerate() {
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            r,
            trace.work_time("atmosphere"),
            trace.work_time("coupler"),
            trace.work_time("ocean"),
            trace.wait_time()
        );
    }

    let summary = TraceSummary::from_traces(&out.traces);
    println!("\naggregate shares of traced time:");
    for label in ["atmosphere", "coupler", "ocean", "wait"] {
        println!("  {label:<11} {:5.1} %", 100.0 * summary.fraction(label));
    }

    // The paper's observations, checked quantitatively:
    let atm_work: f64 = out.traces[..n_atm]
        .iter()
        .map(|t| t.work_time("atmosphere"))
        .sum();
    let ocean_work = out.traces[n_atm].work_time("ocean");
    println!("\npaper comparisons:");
    println!(
        "  atmosphere : ocean total work = {:.1} : 1   (paper: ~16 : 1 at these resolutions)",
        atm_work / ocean_work.max(1e-9)
    );
    let ocean_busy = ocean_work / (t1 - t0);
    println!(
        "  ocean rank busy {:.0} % of the run → {} keep up with {} atmosphere ranks \
         (paper: 1 ocean node keeps up with 16, not 32)",
        100.0 * ocean_busy,
        if ocean_busy < 0.95 { "CAN" } else { "can NOT" },
        n_atm
    );
    println!(
        "  model speedup this run: {:.0}× real time",
        out.model_speedup
    );

    // What the ranks were actually waiting on: the per-tag counters the
    // runtime collects alongside the timeline.
    println!("\n{}", comm_stats_report(&out.traces));
    print!("{}", out.comm_lint);
}
