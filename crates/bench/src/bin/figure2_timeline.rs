//! Experiment F2 — regenerate the paper's **Figure 2**: "Time allocation
//! for a typical FOAM run. Each bar represents a single SP processor.
//! Green sections represent atmosphere calculations, red: coupler code,
//! blue: ocean, and purple: idle time."
//!
//! Here: `A` = atmosphere, `C` = coupler, `O` = ocean, `.` = idle/wait.
//! One simulated day on the paper's 17-node layout (16 atmosphere +
//! 1 ocean) by default; the ocean is called four times (6-h coupling) and
//! the radiation recomputation twice a day makes two atmosphere steps
//! visibly longer, exactly as in the original figure.
//!
//! The timeline bars come from the runtime's activity traces; everything
//! quantitative (per-rank totals, phase shares, the paper comparisons)
//! comes from the `foam-telemetry` report, the same reduction every
//! instrumented run produces.
//!
//! ```sh
//! cargo run --release -p foam-bench --bin figure2_timeline [n_atm_ranks] [days]
//! ```

use foam::diagnostics::comm_stats_report;
use foam::{run_coupled, FoamConfig};
use foam_bench::arg_or;
use foam_telemetry::RankReport;

fn main() {
    let n_atm: usize = arg_or(1, 16);
    let days: f64 = arg_or(2, 1.0);
    let mut cfg = FoamConfig::paper(n_atm, 42);
    cfg.tracing = true;
    cfg.telemetry.enabled = true;

    println!("=== Figure 2: per-processor time allocation ===");
    println!(
        "{} atmosphere ranks + 1 ocean rank, {days} simulated day(s), R15 atmosphere / 128×128×16 ocean\n",
        n_atm
    );
    let out = run_coupled(&cfg, days);
    let report = out.telemetry.as_ref().expect("telemetry was enabled");

    // Common time window across ranks.
    let t0 = out
        .traces
        .iter()
        .filter_map(|t| t.segments.first().map(|s| s.start))
        .fold(f64::INFINITY, f64::min);
    let t1 = out
        .traces
        .iter()
        .flat_map(|t| t.segments.iter().map(|s| s.end))
        .fold(0.0f64, f64::max);

    let width = 100;
    println!(
        "timeline ({:.2} s wall; A = atmosphere, C = coupler, O = ocean, . = idle):\n",
        t1 - t0
    );
    for (r, trace) in out.traces.iter().enumerate() {
        let label = if r < n_atm {
            format!("atm {r:>2}")
        } else {
            "ocean ".to_string()
        };
        println!("{label} |{}|", trace.ascii_bar(t0, t1, width));
    }

    // Everything below reads the cross-rank telemetry report.
    let ph = |r: &RankReport, p: &str| r.phases.get(p).map_or(0.0, |s| s.seconds);
    println!("\nper-rank totals from the telemetry report (seconds):");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "rank", "atm", "coupler", "ocean", "sst wait", "other"
    );
    for r in &report.ranks {
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            r.rank,
            ph(r, "atmosphere"),
            ph(r, "coupler"),
            ph(r, "ocean"),
            r.leaf_seconds("sst_wait"),
            (r.wall_seconds - r.busy_seconds).max(0.0),
        );
    }

    let busy_total: f64 = report.ranks.iter().map(|r| r.busy_seconds).sum();
    println!("\naggregate shares of busy time (and the Figure 2 sub-phases):");
    for path in [
        "atmosphere",
        "atmosphere/dynamics",
        "atmosphere/dynamics/spectral",
        "atmosphere/physics",
        "coupler",
        "ocean",
        "ocean/baroclinic",
        "ocean/barotropic",
    ] {
        if let Some(agg) = report.phase(path) {
            println!(
                "  {path:<28} {:5.1} %  (imbalance {:.2})",
                100.0 * agg.sum / busy_total.max(1e-9),
                agg.imbalance()
            );
        }
    }

    // The paper's observations, checked quantitatively:
    let atm_work = report.phase("atmosphere").map_or(0.0, |a| a.sum);
    let ocean_work = report.rollup("ocean");
    println!("\npaper comparisons:");
    println!(
        "  atmosphere : ocean total work = {:.1} : 1   (paper: ~16 : 1 at these resolutions)",
        atm_work / ocean_work.max(1e-9)
    );
    let ocean_busy = ocean_work / report.wall_seconds.max(1e-9);
    println!(
        "  ocean rank busy {:.0} % of the run → {} keep up with {} atmosphere ranks \
         (paper: 1 ocean node keeps up with 16, not 32)",
        100.0 * ocean_busy,
        if ocean_busy < 0.95 { "CAN" } else { "can NOT" },
        n_atm
    );
    println!(
        "  model speedup this run: {:.0}× real time",
        report.model_speedup
    );
    if let Some(imb) = report.load_imbalance() {
        println!(
            "  per-rank busy time min/mean/max = {:.2}/{:.2}/{:.2} s (max/mean {:.2})",
            imb.min,
            imb.mean,
            imb.max,
            imb.ratio()
        );
    }

    // What the ranks were actually waiting on: the per-tag counters the
    // runtime collects alongside the timeline.
    println!("\n{}", comm_stats_report(&out.traces));
    print!("{}", out.comm_lint);
}
