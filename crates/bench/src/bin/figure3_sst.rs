//! Experiment F3 — regenerate the paper's **Figure 3**: annual-average
//! sea surface temperature, (a) model output, (b) observations,
//! (c) model minus observations.
//!
//! The paper ran FOAM with CCM3 moist physics and compared against the
//! Shea–Trenberth–Reynolds climatology; we run the coupled model from
//! its climatological initial state and compare the final-period mean
//! SST against the synthetic observed climatology (DESIGN.md §4). The
//! published result to match in *shape*: broad pattern captured, tight
//! western-boundary gradients smeared at this resolution, largest errors
//! at high southern latitudes where the ice treatment is crude.
//!
//! ```sh
//! cargo run --release -p foam-bench --bin figure3_sst [days] [n_atm_ranks]
//! ```

use foam::{run_coupled, FoamConfig, World};
use foam_bench::{arg_or, observed_sst, sea_weights};
use foam_grid::Field2;
use foam_stats::ascii::{render_diff_map, render_map};
use foam_stats::pattern_stats;

fn main() {
    let days: f64 = arg_or(1, 60.0);
    let n_atm: usize = arg_or(2, 4);
    let mut cfg = FoamConfig::paper(n_atm, 1997);
    cfg.collect_monthly_sst = true;

    println!("=== Figure 3: sea surface temperature vs observations ===");
    println!("coupled run: {days} simulated days, {n_atm} atm ranks + 1 ocean rank\n");
    let out = run_coupled(&cfg, days);

    // Time-mean over the last half of the run (or the final field for
    // very short runs).
    let model_sst = if out.monthly_sst.len() >= 2 {
        let half = out.monthly_sst.len() / 2;
        let mut acc = Field2::zeros(cfg.ocean.nx, cfg.ocean.ny);
        for f in &out.monthly_sst[half..] {
            acc.axpy(1.0, f);
        }
        acc.scale(1.0 / (out.monthly_sst.len() - half) as f64);
        acc
    } else {
        out.final_sst.clone()
    };

    let world = World::earthlike();
    let (grid, mask, obs) = observed_sst(&cfg.ocean, &world);
    let mut diff = model_sst.clone();
    diff.axpy(-1.0, &obs);

    println!(
        "{}",
        render_map(&model_sst, Some(&mask), "(a) FOAM-RS annual-mean SST (°C)")
    );
    println!(
        "{}",
        render_map(
            &obs,
            Some(&mask),
            "(b) observations (synthetic climatology, °C)"
        )
    );
    println!(
        "{}",
        render_diff_map(&diff, Some(&mask), "(c) model minus observations (°C)")
    );

    let w = sea_weights(&grid, &mask);
    let stats = pattern_stats(model_sst.as_slice(), obs.as_slice(), &w);
    println!("global statistics (area-weighted over sea):");
    println!("  bias                {:>7.2} °C", stats.bias);
    println!("  RMSE                {:>7.2} °C", stats.rmse);
    println!("  pattern correlation {:>7.3}", stats.pattern_correlation);
    println!("  max |difference|    {:>7.2} °C", stats.max_abs_diff);

    // Regional breakdown, mirroring the paper's narrative.
    let mut bands = vec![
        ("tropics (|φ| < 20°)", -20.0, 20.0),
        ("northern midlat", 20.0, 55.0),
        ("southern midlat", -55.0, -20.0),
        ("Antarctic band", -90.0, -55.0),
    ];
    println!("\nregional RMSE (the paper: errors worst in the Antarctic):");
    for (name, lo, hi) in bands.drain(..) {
        let wb: Vec<f64> = (0..grid.len())
            .map(|k| {
                let latd = grid.lats[k / grid.nx].to_degrees();
                if mask[k] && latd >= lo && latd < hi {
                    grid.cell_area(k % grid.nx, k / grid.nx)
                } else {
                    0.0
                }
            })
            .collect();
        if wb.iter().sum::<f64>() > 0.0 {
            let s = pattern_stats(model_sst.as_slice(), obs.as_slice(), &wb);
            println!("  {name:<22} {:>6.2} °C (bias {:+.2})", s.rmse, s.bias);
        }
    }
    println!(
        "\nrun throughput: {:.0}× real time on {} ranks",
        out.model_speedup,
        cfg.n_ranks()
    );
}
