//! The `server-smoke` campaign behind CI's `BENCH_server_throughput.json`
//! artifact: boot `foam-server` on a loopback port, push a small job
//! mix through the HTTP API, and measure what a serving layer is for —
//! how fast cached content comes back versus computing it.
//!
//! ```sh
//! cargo run --release -p foam-bench --bin server_throughput \
//!     [--jobs N] [--days D] [--out PATH]
//! ```
//!
//! The binary *asserts* the serving contract (and thus fails CI when
//! it breaks):
//!
//! 1. a submitted job **streams** per-interval NDJSON progress to
//!    completion and serves its report;
//! 2. resubmitting the same content is a **cache hit**: no second
//!    execution, and the report bytes are **identical**;
//! 3. distinct submissions all complete and are served.
//!
//! The artifact records jobs/sec for fresh runs and the latency of
//! cache hits (the paper's throughput story, transposed to serving).

use std::path::PathBuf;
use std::time::Instant;

use foam_bench::flag_or;
use foam_server::client::{get, post};
use foam_server::{Server, ServerConfig};
use foam_telemetry::json::{parse, Value};

fn job_id(body: &str) -> String {
    parse(body)
        .ok()
        .and_then(|v| v.get("id").and_then(|s| s.as_str().map(str::to_string)))
        .expect("submission response carries a job id")
}

fn wait_done(addr: &str, id: &str) -> Value {
    loop {
        let state = parse(
            &get(addr, &format!("/v1/jobs/{id}"))
                .expect("poll job")
                .text(),
        )
        .expect("job state is JSON");
        match state.get("state").and_then(Value::as_str) {
            Some("done") => return state,
            Some("failed") => panic!("job {id} failed: {state:?}"),
            _ => std::thread::sleep(std::time::Duration::from_millis(25)),
        }
    }
}

fn main() {
    let jobs: usize = flag_or("--jobs", 4);
    let days: f64 = flag_or("--days", 1.0);
    let out_path: String = flag_or("--out", "BENCH_server_throughput.json".to_string());

    let root: PathBuf =
        std::env::temp_dir().join(format!("foam-server-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut cfg = ServerConfig::new(&root);
    cfg.workers = 2;
    let server = Server::start(cfg, "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr().to_string();
    println!("=== foam-server throughput ({jobs} jobs, {days} simulated days each) ===");
    println!("serving on http://{addr}\n");

    // [1] One job end to end: submit, stream progress, fetch report.
    let spec = format!(r#"{{"preset":"tiny","seed":4242,"days":{days},"ckpt_interval":2}}"#);
    let t0 = Instant::now();
    let sub = post(&addr, "/v1/jobs", &spec).expect("submit");
    assert_eq!(sub.status, 202, "submit: {}", sub.text());
    let id = job_id(&sub.text());
    let progress = get(&addr, &format!("/v1/jobs/{id}/progress")).expect("stream progress");
    let lines = progress.lines();
    let cold_latency = t0.elapsed().as_secs_f64();
    let expected_intervals = (days * 4.0).round() as usize; // 6-hour coupling
    assert!(
        lines.len() > expected_intervals,
        "expected ≥{} progress lines + final, got {}",
        expected_intervals,
        lines.len()
    );
    assert!(
        lines
            .last()
            .expect("final line")
            .contains("\"event\": \"done\""),
        "stream must end with the done event"
    );
    wait_done(&addr, &id);
    let report = get(&addr, &format!("/v1/jobs/{id}/report")).expect("fetch report");
    assert_eq!(report.status, 200);
    println!(
        "[1/3] cold run: {} progress lines, report {} bytes, {:.2}s",
        lines.len() - 1,
        report.body.len(),
        cold_latency
    );

    // [2] Cache hits: resubmit the identical content, check the
    //     single-flight/caching contract, and time the hit path.
    let re = post(&addr, "/v1/jobs", &spec).expect("resubmit");
    let rv = parse(&re.text()).expect("resubmission is JSON");
    assert_eq!(
        rv.get("cached").cloned(),
        Some(Value::Bool(true)),
        "resubmit must hit"
    );
    assert_eq!(
        rv.get("executions").and_then(Value::as_f64),
        Some(1.0),
        "cache hit must not re-run the model"
    );
    let n_hits = 50;
    let t_hit = Instant::now();
    for _ in 0..n_hits {
        let again = get(&addr, &format!("/v1/jobs/{id}/report")).expect("cached report");
        assert_eq!(
            again.body, report.body,
            "cached report bytes must be identical"
        );
    }
    let hit_ms = 1e3 * t_hit.elapsed().as_secs_f64() / n_hits as f64;
    println!("[2/3] cache hit: byte-identical, {hit_ms:.2} ms/fetch over {n_hits} fetches");

    // [3] Throughput: a burst of distinct jobs across two tenants.
    let t_burst = Instant::now();
    let ids: Vec<String> = (0..jobs)
        .map(|i| {
            let spec = format!(
                r#"{{"preset":"tiny","seed":{},"days":{days},"tenant":"{}","ckpt_interval":2}}"#,
                5000 + i,
                if i % 2 == 0 { "ada" } else { "grace" },
            );
            let sub = post(&addr, "/v1/jobs", &spec).expect("burst submit");
            assert_eq!(sub.status, 202);
            job_id(&sub.text())
        })
        .collect();
    for id in &ids {
        wait_done(&addr, id);
    }
    let burst = t_burst.elapsed().as_secs_f64();
    let jobs_per_sec = jobs as f64 / burst;
    println!("[3/3] burst: {jobs} jobs in {burst:.2}s ({jobs_per_sec:.2} jobs/s)\n");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);

    let artifact = Value::object([
        (
            "schema".to_string(),
            Value::from("foam-server-throughput/1"),
        ),
        ("jobs".to_string(), Value::from(jobs)),
        ("days_per_job".to_string(), Value::from(days)),
        ("cold_latency_s".to_string(), Value::from(cold_latency)),
        ("cache_hit_latency_ms".to_string(), Value::from(hit_ms)),
        ("cache_hit_byte_identical".to_string(), Value::Bool(true)),
        ("jobs_per_sec".to_string(), Value::from(jobs_per_sec)),
        (
            "progress_lines_streamed".to_string(),
            Value::from(lines.len()),
        ),
    ]);
    std::fs::write(&out_path, artifact.to_string_pretty() + "\n").expect("write artifact");
    println!("wrote {out_path}");
}
