//! Experiment E1 — ensemble variability under fault-tolerant
//! orchestration: the Figure 4 question ("how large is the model's
//! internal variability?") answered the way the paper's users actually
//! answered it — with an *ensemble* of perturbed coupled runs — plus
//! the operational half of the story: a member killed mid-run is
//! resumed from its checkpoint and lands on the same answer.
//!
//! Runs an `N`-member seed-sweep ensemble across `W` workers, writes
//! the deterministic `foam-ensemble/1` aggregate to
//! `BENCH_ensemble_variability.json`, and prints the ensemble-mean SST
//! trajectory with its spread. The artifact is byte-identical for any
//! `--workers` value — that invariance is asserted by the integration
//! tests and checked again in CI.
//!
//! ```sh
//! cargo run --release -p foam-bench --bin ensemble_variability -- \
//!     [--members N] [--workers W] [--days D] [--seed S] [--fault-plan M]
//! ```
//!
//! `--fault-plan M` injects a kill into member `M`'s SST exchange
//! halfway through the run; the report then shows that member
//! recovering (`retries > 0`, status `ok`).

use std::path::PathBuf;

use foam::FoamConfig;
use foam_bench::flag_or;
use foam_ensemble::{kill_sst_after, run_ensemble, EnsembleSpec};
use foam_stats::ascii::sparkline;

fn main() {
    let members: usize = flag_or("--members", 4);
    let workers: usize = flag_or("--workers", 2);
    let days: f64 = flag_or("--days", 30.0);
    let seed: u64 = flag_or("--seed", 1914);
    let fault_member: i64 = flag_or("--fault-plan", -1);

    println!("=== E1: ensemble variability ({members} members, {workers} workers) ===\n");

    let mut spec = EnsembleSpec::seed_sweep(FoamConfig::tiny(seed), days, members);
    spec.workers = workers;
    spec.output_dir =
        Some(std::env::temp_dir().join(format!("foam-bench-ensemble-{}", std::process::id())));
    if fault_member >= 0 {
        let m = fault_member as usize;
        assert!(m < members, "--fault-plan member out of range");
        // Kill the member's SST exchange halfway through (the coupler
        // exchanges SST once per coupling interval, 4 per day).
        let hits = ((days * 4.0) as u64 / 2).max(1);
        spec.members[m].fault_plan = Some(kill_sst_after(seed, hits));
        println!("fault plan: member {m} loses its SST exchange after {hits} intervals\n");
    }

    let out = run_ensemble(&spec).expect("ensemble spec should be valid");
    let report = &out.report;

    println!(
        "completed {}/{} members in {:.1} s wall-clock ({} retries)",
        report.n_ok, members, out.wall_seconds, report.total_retries
    );
    if let Some(t) = &out.merged_telemetry {
        println!(
            "aggregate model speedup across members: {:.0}× real time",
            t.model_speedup
        );
    }

    println!("\nensemble-mean SST trajectory (°C):");
    println!("  {}", sparkline(&report.sst_mean_series, 90));
    println!("ensemble spread (σ):");
    println!("  {}", sparkline(&report.sst_spread_series, 90));
    let last_spread = report.sst_spread_series.last().copied().unwrap_or(0.0);
    println!("final spread: {last_spread:.4} °C");

    println!("\nper-member summary:");
    for m in &report.members {
        let sst = m
            .final_mean_sst
            .map(|x| format!("{x:.3} °C"))
            .unwrap_or_else(|| "—".into());
        let pat = m
            .pattern_vs_ensemble_mean
            .as_ref()
            .map(|p| format!(", rmse vs ens-mean {:.3}", p.rmse))
            .unwrap_or_default();
        println!(
            "  member {:>2}  seed {:<6} {:>6}  retries {}  final SST {sst}{pat}",
            m.id, m.seed, m.status, m.retries
        );
    }

    let path = PathBuf::from("BENCH_ensemble_variability.json");
    report.write_json(&path).expect("write report artifact");
    println!("\nwrote {} ({})", path.display(), foam_ensemble::SCHEMA);
}
