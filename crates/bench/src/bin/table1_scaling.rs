//! Experiment T1 — the paper's §5 performance numbers (its de-facto
//! results table): model speedup versus node count, the atmosphere:ocean
//! cost ratio, and whether one ocean node keeps up with N atmosphere
//! nodes.
//!
//! **Substitution note** (DESIGN.md §4): this host exposes a single CPU
//! core, so ranks are concurrency, not parallelism. Measured wall time
//! is therefore reported alongside a *projected parallel* time computed
//! from the per-rank busy time of the `foam-telemetry` report (`max`
//! over ranks of work, exchange waits excluded), the same accounting the
//! paper's Figure 2 visualizes. Projected speedup curves show the shape
//! the paper reports: near-linear over the small rank counts, degrading
//! as latitude bands thin and the replicated coupler grows relatively
//! more expensive.
//!
//! ```sh
//! cargo run --release -p foam-bench --bin table1_scaling [days] [max_ranks]
//! ```

use foam::{run_coupled, FoamConfig};
use foam_bench::arg_or;
use foam_grid::World;
use foam_ocean::{OceanConfig, OceanForcing, OceanModel};
use std::time::Instant;

fn main() {
    let days: f64 = arg_or(1, 0.5);
    let max_ranks: usize = arg_or(2, 8);

    println!("=== Table 1: throughput and scaling (paper §5) ===\n");

    // ---- Ocean-only throughput (paper: 105,000× on 64 nodes). --------
    let world = World::earthlike();
    let ocfg = OceanConfig::default();
    let omodel = OceanModel::new(ocfg, &world);
    let mut ostate = omodel.init_state(&world);
    let forcing = OceanForcing::climatological(&omodel.grid, &world, &omodel.sst(&ostate));
    let t0 = Instant::now();
    let ocean_days = days.max(2.0);
    for _ in 0..(4.0 * ocean_days) as usize {
        omodel.step_coupled(&mut ostate, &forcing, 21_600.0);
    }
    let ocean_wall = t0.elapsed().as_secs_f64();
    let ocean_speedup = ocean_days * 86_400.0 / ocean_wall;
    println!(
        "ocean-only (128×128×16, split+slowed+subcycled): {ocean_speedup:.0}× real time \
         [paper: 105,000× on 64 SP2 nodes]\n"
    );

    // ---- Coupled scaling sweep. ---------------------------------------
    println!(
        "{:>9} {:>12} {:>14} {:>14} {:>12} {:>12} {:>8}",
        "atm ranks",
        "wall (s)",
        "measured ×RT",
        "projected ×RT",
        "atm:ocn work",
        "ocn busy %",
        "imb"
    );
    let mut ranks = vec![1usize, 2, 4];
    for r in [8usize, 16] {
        if r <= max_ranks {
            ranks.push(r);
        }
    }
    let sim_seconds = days * 86_400.0;
    for &n_atm in &ranks {
        let mut cfg = FoamConfig::paper(n_atm, 7);
        cfg.telemetry.enabled = true;
        let out = run_coupled(&cfg, days);
        let report = out.telemetry.as_ref().expect("telemetry was enabled");
        // Projected parallel wall: the busiest rank's work (exchange
        // waits excluded) against the (serial) ocean integration that
        // cannot overlap.
        let max_work = report
            .ranks
            .iter()
            .take(n_atm)
            .map(|r| r.busy_seconds - r.leaf_seconds("sst_wait"))
            .fold(0.0f64, f64::max);
        let ocean_work = report.rollup("ocean");
        let projected_wall = max_work.max(ocean_work);
        let atm_total = report.phase("atmosphere").map_or(0.0, |a| a.sum);
        println!(
            "{:>9} {:>12.2} {:>14.0} {:>14.0} {:>12.1} {:>12.0} {:>8.2}",
            n_atm,
            out.wall_seconds,
            out.model_speedup,
            sim_seconds / projected_wall.max(1e-9),
            atm_total / ocean_work.max(1e-9),
            100.0 * ocean_work / projected_wall.max(1e-9),
            report.load_imbalance().map_or(1.0, |i| i.ratio()),
        );
    }

    println!(
        "\npaper reference points: ~4,000× on 34 nodes, ~6,000× best on 68; \
         near-linear scaling on 8/16/32 atmosphere ranks; \
         atmosphere ≈ 16× the ocean's processor time; \
         1 ocean node keeps up with 16 atmosphere nodes but not 32."
    );
    println!(
        "(single-core host: 'measured' column is concurrency-limited; the \
         'projected' column applies the Figure-2 busy-time accounting — see \
         EXPERIMENTS.md)"
    );
}
