//! Experiment F4 — regenerate the paper's **Figure 4**: "Two basin
//! variability… a pattern (obtained by VARIMAX rotation of empirical
//! orthogonal function decomposition) that accounts for fully 15 percent
//! of 60 month low-pass filtered variance in sea surface temperature",
//! with a century-scale time series correlating the North Atlantic and
//! North Pacific.
//!
//! The coupled model runs for the requested number of simulated years at
//! the reduced resolution (wall time: roughly a couple of minutes per
//! simulated year-decade on one core); monthly SST anomalies are
//! detrended, low-pass filtered, decomposed and rotated.
//!
//! ```sh
//! cargo run --release -p foam-bench --bin figure4_variability [years] [--seed N]
//! ```
//!
//! `--seed` varies the atmosphere's initial perturbation, so ensembles
//! of the variability analysis can be generated without editing code.

use foam::{run_coupled, FoamConfig, OceanModel, World};
use foam_bench::{arg_or, flag_or};
use foam_grid::{Basin, Field2, OceanGrid};
use foam_stats::ascii::{render_diff_map, sparkline};
use foam_stats::{anomalies_monthly, correlation, detrend, eof_analysis, lanczos_lowpass, varimax};

fn main() {
    let years: f64 = arg_or(1, 8.0);
    let seed: u64 = flag_or("--seed", 1914);
    let mut cfg = FoamConfig::tiny(seed);
    cfg.collect_monthly_sst = true;

    println!("=== Figure 4: two-basin low-frequency variability ===");
    println!("coupled run: {years} simulated years (reduced configuration, seed {seed})\n");
    let out = run_coupled(&cfg, years * 360.0);
    let n_months = out.monthly_sst.len();
    println!(
        "collected {n_months} monthly SST fields at {:.0}× real time",
        out.model_speedup
    );
    assert!(n_months >= 24, "need ≥ 2 simulated years");

    let world = World::earthlike();
    let grid = OceanGrid::mercator(cfg.ocean.nx, cfg.ocean.ny, cfg.ocean.lat_max_deg);
    let mask = OceanModel::effective_sea_mask(&cfg.ocean, &world);
    let n_s = grid.len();
    let weights: Vec<f64> = (0..n_s)
        .map(|k| {
            if mask[k] {
                grid.cell_area(k % grid.nx, k / grid.nx) / 1.0e12
            } else {
                0.0
            }
        })
        .collect();

    // Anomalies → detrend → low-pass. The filter period follows the
    // paper (60 months) when the record supports it and shrinks
    // gracefully for shorter demo runs.
    let lp = (n_months as f64 / 4.0).clamp(6.0, 60.0);
    println!("low-pass period: {lp:.0} months (paper: 60)\n");
    let mut data = vec![vec![0.0; n_s]; n_months];
    let mut total_var = 0.0;
    let mut lp_var = 0.0;
    for s in 0..n_s {
        if weights[s] == 0.0 {
            continue;
        }
        let series: Vec<f64> = out.monthly_sst.iter().map(|f| f.as_slice()[s]).collect();
        let mut anom = anomalies_monthly(&series);
        detrend(&mut anom);
        let low = lanczos_lowpass(&anom, lp);
        for t in 0..n_months {
            total_var += weights[s] * anom[t] * anom[t];
            lp_var += weights[s] * low[t] * low[t];
            data[t][s] = low[t];
        }
    }
    println!(
        "low-passed variance fraction of total anomaly variance: {:.0} %",
        100.0 * lp_var / total_var.max(1e-30)
    );

    let k = 4;
    let eof = eof_analysis(&data, &weights, k + 2);
    let rot = varimax(&data, &weights, &eof, k.min(eof.patterns.len()));
    println!(
        "\nEOF spectrum (unrotated): {:?}",
        &percent(&eof.variance_fraction)
    );
    println!(
        "VARIMAX-rotated leading modes: {:?}",
        &percent(&rot.variance_fraction)
    );
    println!(
        "\nleading rotated mode: {:.1} % of low-passed variance (paper: 15 %)",
        100.0 * rot.variance_fraction[0]
    );

    // (a) spatial pattern
    let pat = Field2::from_vec(grid.nx, grid.ny, rot.patterns[0].clone());
    println!(
        "\n{}",
        render_diff_map(
            &pat,
            Some(&mask),
            "(a) spatial pattern (SST anomaly loading)"
        )
    );
    // (b) temporal pattern
    println!("(b) temporal pattern (PC 1):");
    println!("   {}", sparkline(&rot.pcs[0], 90));

    // Two-basin diagnostics: mean loading per northern basin + box series
    // correlation.
    let basin_mean_loading = |basin: Basin| -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for s in 0..n_s {
            if weights[s] > 0.0 {
                let (i, j) = (s % grid.nx, s / grid.nx);
                let latd = grid.lats[j].to_degrees();
                if world.basin(grid.lons[i], grid.lats[j]) == basin && (25.0..60.0).contains(&latd)
                {
                    num += weights[s] * rot.patterns[0][s];
                    den += weights[s];
                }
            }
        }
        num / den.max(1e-12)
    };
    let box_series = |basin: Basin| -> Vec<f64> {
        (0..n_months)
            .map(|t| {
                let mut num = 0.0;
                let mut den = 0.0;
                for s in 0..n_s {
                    if weights[s] > 0.0 {
                        let (i, j) = (s % grid.nx, s / grid.nx);
                        let latd = grid.lats[j].to_degrees();
                        if world.basin(grid.lons[i], grid.lats[j]) == basin
                            && (25.0..60.0).contains(&latd)
                        {
                            num += weights[s] * data[t][s];
                            den += weights[s];
                        }
                    }
                }
                num / den.max(1e-12)
            })
            .collect()
    };
    let la = basin_mean_loading(Basin::Atlantic);
    let lp_ = basin_mean_loading(Basin::Pacific);
    let natl = box_series(Basin::Atlantic);
    let npac = box_series(Basin::Pacific);
    let r = correlation(&natl, &npac);
    println!("\ntwo-basin diagnostics (25–60°N boxes):");
    println!("  mode-1 mean loading: N. Atlantic {la:+.3}, N. Pacific {lp_:+.3}");
    println!(
        "  same-sign loadings: {}",
        if la * lp_ > 0.0 {
            "YES (two-basin mode, as in the paper)"
        } else {
            "no"
        }
    );
    println!("  low-passed N.Atl × N.Pac correlation: r = {r:+.2}");
    println!("\n  N.Atl: {}", sparkline(&natl, 90));
    println!("  N.Pac: {}", sparkline(&npac, 90));
}

fn percent(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (1000.0 * x).round() / 10.0).collect()
}
