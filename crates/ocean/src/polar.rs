//! The Fourier polar filter.
//!
//! On a Mercator grid, zonal grid spacing shrinks as cos φ; rather than
//! let the CFL condition be set by the poleward-most rows, FOAM (like the
//! atmospheric models it cites) filters high zonal wavenumbers from rows
//! poleward of a threshold latitude, so the *effective* resolution — and
//! hence stability — matches the mid-latitudes.

use foam_grid::{Field2, OceanGrid};
use foam_spectral::fft::{real_analysis, real_synthesis, FftPlan};

/// A polar filter bound to a grid.
pub struct PolarFilter {
    plan: FftPlan,
    /// Per row: `None` (row untouched) or damping factors per zonal
    /// wavenumber 0..=nx/2.
    factors: Vec<Option<Vec<f64>>>,
}

impl PolarFilter {
    /// Build for rows poleward of `lat0_deg`. Wavenumbers above
    /// m_keep = (nx/2)·cos φ / cos φ₀ are damped as (m_keep/m)².
    pub fn new(grid: &OceanGrid, lat0_deg: f64) -> Self {
        let lat0 = lat0_deg.to_radians();
        let half = grid.nx / 2;
        let factors = grid
            .lats
            .iter()
            .map(|&lat| {
                if lat.abs() <= lat0 {
                    return None;
                }
                let m_keep = (half as f64) * lat.cos() / lat0.cos();
                let f: Vec<f64> = (0..=half)
                    .map(|m| {
                        if (m as f64) <= m_keep {
                            1.0
                        } else {
                            (m_keep / m as f64).powi(2)
                        }
                    })
                    .collect();
                Some(f)
            })
            .collect();
        PolarFilter {
            plan: FftPlan::new(grid.nx),
            factors,
        }
    }

    /// Number of rows the filter touches.
    pub fn n_filtered_rows(&self) -> usize {
        self.factors.iter().filter(|f| f.is_some()).count()
    }

    /// Filter a field in place.
    pub fn apply(&self, f: &mut Field2) {
        let nx = self.plan.len();
        assert_eq!(f.nx(), nx);
        let half = nx / 2;
        for j in 0..f.ny() {
            if let Some(fac) = &self.factors[j] {
                let mut coeffs = real_analysis(&self.plan, f.row(j), half);
                for (m, c) in coeffs.iter_mut().enumerate() {
                    *c = c.scale(fac[m]);
                }
                // Note: real_synthesis requires 2·m_max < nx, so drop the
                // Nyquist coefficient (it is damped hardest anyway).
                coeffs.truncate(half);
                real_synthesis(&self.plan, &coeffs, f.row_mut(j));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> OceanGrid {
        OceanGrid::mercator(32, 24, 75.0)
    }

    #[test]
    fn equatorial_rows_are_untouched() {
        let g = grid();
        let filt = PolarFilter::new(&g, 66.0);
        let mut f = Field2::from_fn(g.nx, g.ny, |i, j| ((i * 3 + j) as f64 * 0.9).sin());
        let before = f.clone();
        filt.apply(&mut f);
        let jm = g.ny / 2;
        for i in 0..g.nx {
            assert!((f.get(i, jm) - before.get(i, jm)).abs() < 1e-12);
        }
        assert!(filt.n_filtered_rows() > 0);
        assert!(filt.n_filtered_rows() < g.ny / 2);
    }

    #[test]
    fn polar_rows_lose_grid_scale_noise_but_keep_means() {
        let g = grid();
        let filt = PolarFilter::new(&g, 60.0);
        // 2Δx noise on the northernmost row + a constant offset.
        let jn = g.ny - 1;
        let mut f = Field2::zeros(g.nx, g.ny);
        for i in 0..g.nx {
            f.set(i, jn, 3.0 + if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let mean_before: f64 = f.row(jn).iter().sum::<f64>() / g.nx as f64;
        filt.apply(&mut f);
        let mean_after: f64 = f.row(jn).iter().sum::<f64>() / g.nx as f64;
        assert!((mean_after - mean_before).abs() < 1e-10, "m=0 must pass");
        // Checkerboard (Nyquist) amplitude strongly reduced.
        let mut amp = 0.0f64;
        for i in 0..g.nx {
            amp = amp.max((f.get(i, jn) - mean_after).abs());
        }
        assert!(amp < 0.3, "residual noise {amp}");
    }

    #[test]
    fn low_wavenumbers_pass_at_high_latitude() {
        let g = grid();
        let filt = PolarFilter::new(&g, 60.0);
        let jn = g.ny - 1;
        let mut f = Field2::zeros(g.nx, g.ny);
        for i in 0..g.nx {
            let lam = 2.0 * std::f64::consts::PI * i as f64 / g.nx as f64;
            f.set(i, jn, (2.0 * lam).cos());
        }
        let before = f.row(jn).to_vec();
        filt.apply(&mut f);
        for i in 0..g.nx {
            assert!(
                (f.get(i, jn) - before[i]).abs() < 0.05,
                "m=2 should survive at row {jn}"
            );
        }
    }

    #[test]
    fn keep_count_shrinks_poleward() {
        let g = grid();
        let filt = PolarFilter::new(&g, 55.0);
        // Effective kept wavenumbers decrease towards the pole.
        let kept = |j: usize| -> f64 {
            match &filt.factors[j] {
                None => (g.nx / 2) as f64,
                Some(f) => f.iter().sum(),
            }
        };
        assert!(kept(g.ny - 1) < kept(g.ny - 3));
        assert!(kept(g.ny - 3) <= kept(g.ny / 2));
    }
}
