//! The full ocean model: internal (baroclinic) dynamics, tracers, and the
//! nested FOAM time-stepping scheme, plus the unsplit baseline.

use foam_grid::constants::{
    coriolis, CP_SEAWATER, GRAVITY, RHO_SEAWATER, SEAWATER_FREEZE_C, S_REF,
};
use foam_grid::{Field2, OceanGrid, VerticalGrid, World};

use crate::barotropic::{BarotropicState, BarotropicSystem};
use crate::eos::density_anomaly;
use crate::mixing::{convective_adjustment, diffuse_column, richardson, PpParams};
use crate::polar::PolarFilter;

/// Which stepping scheme a run uses (the subject of ablation A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitScheme {
    /// FOAM's scheme: slowed barotropic subsystem subcycled inside the
    /// internal step; tracers on a longer step still.
    FoamSplit,
    /// Naive scheme: one global step limited by the *unslowed* external
    /// gravity wave CFL; everything advanced every step.
    Unsplit,
}

/// Ocean configuration. Defaults reproduce the paper's setup: 128 × 128
/// Mercator grid, 16 stretched levels, 6-h coupling, slowed free surface.
#[derive(Debug, Clone)]
pub struct OceanConfig {
    pub nx: usize,
    pub ny: usize,
    pub lat_max_deg: f64,
    pub nz: usize,
    pub depth: f64,
    /// Vertical stretching ratio (thickness growth per layer).
    pub stretch: f64,
    /// Internal-dynamics step \[s\].
    pub dt_int: f64,
    /// Tracer (advection/diffusion) step, in internal steps.
    pub n_trac: usize,
    /// Free-surface slowdown factor α.
    pub slowdown: f64,
    /// Non-dimensional grid-scale ∇⁴ damping coefficient for momentum
    /// (the paper's "∇⁴ numerical dissipation" against A-grid mode
    /// splitting).
    pub nu4: f64,
    /// Horizontal tracer diffusivity \[m²/s\].
    pub kappa_h: f64,
    /// Upwind blend for tracer advection ∈ \[0, 1\].
    pub upwind: f64,
    pub pp: PpParams,
    /// Latitude poleward of which the Fourier filter acts \[deg\].
    pub polar_lat: f64,
    /// Apply the polar filter at all (ablation hook).
    pub polar_filter_on: bool,
}

impl Default for OceanConfig {
    fn default() -> Self {
        OceanConfig {
            nx: 128,
            ny: 128,
            lat_max_deg: 72.0,
            nz: 16,
            depth: 5000.0,
            stretch: 1.29,
            dt_int: 3600.0,
            n_trac: 2,
            slowdown: 16.0,
            nu4: 0.02,
            kappa_h: 800.0,
            upwind: 0.15,
            pp: PpParams::default(),
            polar_lat: 64.0,
            polar_filter_on: true,
        }
    }
}

impl OceanConfig {
    /// Small configuration for tests: 32 × 24 × 6.
    pub fn tiny() -> Self {
        OceanConfig {
            nx: 32,
            ny: 24,
            lat_max_deg: 70.0,
            nz: 6,
            depth: 4000.0,
            stretch: 2.0,
            ..Default::default()
        }
    }
}

/// Full ocean prognostic state.
#[derive(Debug, Clone)]
pub struct OceanState {
    /// Baroclinic (depth-mean-free) velocities per level \[m/s\].
    pub u: Vec<Field2>,
    pub v: Vec<Field2>,
    /// Temperature \[°C\] and salinity \[psu\] per level.
    pub t: Vec<Field2>,
    pub s: Vec<Field2>,
    /// Free surface + depth-mean (barotropic) velocities.
    pub baro: BarotropicState,
    pub sim_t: f64,
    /// Count of internal steps taken (drives the tracer subcycle phase).
    pub step_count: u64,
}

impl foam_ckpt::Codec for OceanState {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.u.encode(buf);
        self.v.encode(buf);
        self.t.encode(buf);
        self.s.encode(buf);
        self.baro.encode(buf);
        self.sim_t.encode(buf);
        self.step_count.encode(buf);
    }
    fn decode(r: &mut foam_ckpt::ByteReader<'_>) -> Result<Self, foam_ckpt::CkptError> {
        Ok(OceanState {
            u: Vec::<Field2>::decode(r)?,
            v: Vec::<Field2>::decode(r)?,
            t: Vec::<Field2>::decode(r)?,
            s: Vec::<Field2>::decode(r)?,
            baro: BarotropicState::decode(r)?,
            sim_t: f64::decode(r)?,
            step_count: u64::decode(r)?,
        })
    }
}

/// Surface forcing handed to the ocean by the coupler, on the ocean grid.
#[derive(Debug, Clone)]
pub struct OceanForcing {
    /// Wind stress \[N/m²\] (ice-modified by the coupler where relevant).
    pub tau_x: Field2,
    pub tau_y: Field2,
    /// Net heat flux *into* the ocean \[W/m²\].
    pub heat: Field2,
    /// Net freshwater flux *into* the ocean \[kg m⁻² s⁻¹\]
    /// (P − E + river inflow, the closed hydrological cycle).
    pub freshwater: Field2,
}

impl OceanForcing {
    pub fn zeros(grid: &OceanGrid) -> Self {
        OceanForcing {
            tau_x: Field2::zeros(grid.nx, grid.ny),
            tau_y: Field2::zeros(grid.nx, grid.ny),
            heat: Field2::zeros(grid.nx, grid.ny),
            freshwater: Field2::zeros(grid.nx, grid.ny),
        }
    }

    /// Idealized standalone forcing: easterly trades / westerlies wind
    /// pattern and relaxation of SST toward the climatology (for spin-up
    /// runs without an atmosphere).
    pub fn climatological(grid: &OceanGrid, world: &World, sst: &Field2) -> Self {
        let mut f = Self::zeros(grid);
        for j in 0..grid.ny {
            let lat = grid.lats[j];
            let latd = lat.to_degrees();
            // Trades below 30°, westerlies 30–60°.
            let tau = -0.08
                * (std::f64::consts::PI * latd / 30.0).cos()
                * (-((latd / 55.0) * (latd / 55.0))).exp()
                + 0.06 * (-((latd.abs() - 45.0) / 12.0).powi(2)).exp();
            for i in 0..grid.nx {
                f.tau_x.set(i, j, tau);
                let target = world.sst_climatology(grid.lons[i], lat);
                // 40 W/m²/K restoring.
                f.heat.set(i, j, 40.0 * (target - sst.get(i, j)));
            }
        }
        f
    }
}

impl foam_ckpt::Codec for OceanForcing {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.tau_x.encode(buf);
        self.tau_y.encode(buf);
        self.heat.encode(buf);
        self.freshwater.encode(buf);
    }
    fn decode(r: &mut foam_ckpt::ByteReader<'_>) -> Result<Self, foam_ckpt::CkptError> {
        Ok(OceanForcing {
            tau_x: Field2::decode(r)?,
            tau_y: Field2::decode(r)?,
            heat: Field2::decode(r)?,
            freshwater: Field2::decode(r)?,
        })
    }
}

/// The ocean component.
pub struct OceanModel {
    pub cfg: OceanConfig,
    pub grid: OceanGrid,
    pub vert: VerticalGrid,
    /// `true` = sea.
    pub mask: Vec<bool>,
    pub baro_sys: BarotropicSystem,
    filter: PolarFilter,
    f_row: Vec<f64>,
}

impl OceanModel {
    /// The sea mask this model will use for a given configuration: the
    /// planet's mask with the first and last rows closed (they sit at the
    /// Mercator coverage limit and act as walls, which makes the
    /// flux-form tracer budget exactly closed). The coupler must build
    /// its overlap grid from this same mask.
    pub fn effective_sea_mask(cfg: &OceanConfig, world: &World) -> Vec<bool> {
        let grid = OceanGrid::mercator(cfg.nx, cfg.ny, cfg.lat_max_deg);
        let mut mask = world.ocean_sea_mask(&grid);
        for i in 0..grid.nx {
            mask[grid.idx(i, 0)] = false;
            mask[grid.idx(i, grid.ny - 1)] = false;
        }
        mask
    }

    pub fn new(cfg: OceanConfig, world: &World) -> Self {
        let grid = OceanGrid::mercator(cfg.nx, cfg.ny, cfg.lat_max_deg);
        let vert = VerticalGrid::ocean_stretched(cfg.nz, cfg.depth, cfg.stretch);
        let mask = Self::effective_sea_mask(&cfg, world);
        let baro_sys = BarotropicSystem::new(grid.clone(), mask.clone(), cfg.depth, cfg.slowdown);
        let filter = PolarFilter::new(&grid, cfg.polar_lat);
        let f_row = grid.lats.iter().map(|&l| coriolis(l)).collect();
        OceanModel {
            cfg,
            grid,
            vert,
            mask,
            baro_sys,
            filter,
            f_row,
        }
    }

    /// Initial state: climatological SST decaying to a cold abyss,
    /// uniform salinity, at rest.
    pub fn init_state(&self, world: &World) -> OceanState {
        let (nx, ny, nz) = (self.grid.nx, self.grid.ny, self.cfg.nz);
        let zero = Field2::zeros(nx, ny);
        let mut t = Vec::with_capacity(nz);
        let mut s = Vec::with_capacity(nz);
        for k in 0..nz {
            let z = self.vert.centers[k];
            let mut tk = Field2::zeros(nx, ny);
            for j in 0..ny {
                for i in 0..nx {
                    if self.mask[self.grid.idx(i, j)] {
                        let sst = world.sst_climatology(self.grid.lons[i], self.grid.lats[j]);
                        // Exponential thermocline toward a 1.0 °C abyss;
                        // where the surface is colder than the abyss
                        // (polar seas) the column is isothermal, so the
                        // initial state is statically stable everywhere.
                        let t_abyss = 1.0;
                        let tv = if sst > t_abyss {
                            t_abyss + (sst - t_abyss) * (-z / 800.0).exp()
                        } else {
                            sst
                        };
                        tk.set(i, j, tv.max(SEAWATER_FREEZE_C));
                    }
                }
            }
            t.push(tk);
            s.push(Field2::filled(nx, ny, S_REF));
        }
        OceanState {
            u: vec![zero.clone(); nz],
            v: vec![zero.clone(); nz],
            t,
            s,
            baro: BarotropicState::rest(&self.grid),
            sim_t: 0.0,
            step_count: 0,
        }
    }

    /// Sea surface temperature \[°C\].
    pub fn sst(&self, state: &OceanState) -> Field2 {
        state.t[0].clone()
    }

    /// Total velocity (baroclinic + barotropic) of level `k` at `(i, j)`.
    #[inline]
    pub fn u_total(&self, state: &OceanState, k: usize, i: usize, j: usize) -> f64 {
        state.u[k].get(i, j) + state.baro.u.get(i, j)
    }

    #[inline]
    pub fn v_total(&self, state: &OceanState, k: usize, i: usize, j: usize) -> f64 {
        state.v[k].get(i, j) + state.baro.v.get(i, j)
    }

    // ------------------------------------------------------------------
    // Dynamics pieces
    // ------------------------------------------------------------------

    /// Geopotential (p′/ρ₀) per level from the hydrostatic integral of
    /// the density anomaly \[m²/s²\].
    fn baroclinic_geopotential(&self, state: &OceanState) -> Vec<Field2> {
        let (nx, ny, nz) = (self.grid.nx, self.grid.ny, self.cfg.nz);
        let mut phi = vec![Field2::zeros(nx, ny); nz];
        for j in 0..ny {
            for i in 0..nx {
                if !self.mask[self.grid.idx(i, j)] {
                    continue;
                }
                let mut p = 0.0;
                for k in 0..nz {
                    let rho = density_anomaly(state.t[k].get(i, j), state.s[k].get(i, j));
                    let half = 0.5 * GRAVITY * rho * self.vert.thickness[k] / RHO_SEAWATER;
                    p += half;
                    phi[k].set(i, j, p);
                    p += half;
                }
            }
        }
        phi
    }

    /// Grid-scale biharmonic damping of a field (non-dimensional
    /// Laplacian applied twice), masked to sea cells.
    fn del4(&self, f: &Field2) -> Field2 {
        let lap = self.lap_gridunits(f);
        self.lap_gridunits(&lap)
    }

    fn lap_gridunits(&self, f: &Field2) -> Field2 {
        let (nx, ny) = (self.grid.nx, self.grid.ny);
        let mut out = Field2::zeros(nx, ny);
        for j in 0..ny {
            for i in 0..nx {
                let k = self.grid.idx(i, j);
                if !self.mask[k] {
                    continue;
                }
                let c = f.get(i, j);
                let mut acc = 0.0;
                let mut cnt = 0.0;
                let e = ((i + 1) % nx, j);
                let w = ((i + nx - 1) % nx, j);
                for (ii, jj) in [e, w] {
                    if self.mask[self.grid.idx(ii, jj)] {
                        acc += f.get(ii, jj) - c;
                        cnt += 1.0;
                    }
                }
                if j + 1 < ny && self.mask[self.grid.idx(i, j + 1)] {
                    acc += f.get(i, j + 1) - c;
                    cnt += 1.0;
                }
                if j > 0 && self.mask[self.grid.idx(i, j - 1)] {
                    acc += f.get(i, j - 1) - c;
                    cnt += 1.0;
                }
                let _ = cnt;
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Per-level momentum forcings (accelerations \[m/s²\]) and their
    /// depth mean: (Fx levels, Fy levels, fx mean, fy mean).
    fn momentum_forcings(
        &self,
        state: &OceanState,
        forcing: &OceanForcing,
    ) -> (Vec<Field2>, Vec<Field2>, Field2, Field2) {
        let (nx, ny, nz) = (self.grid.nx, self.grid.ny, self.cfg.nz);
        let phi = self.baroclinic_geopotential(state);
        let mut fx = vec![Field2::zeros(nx, ny); nz];
        let mut fy = vec![Field2::zeros(nx, ny); nz];
        let mut mx = Field2::zeros(nx, ny);
        let mut my = Field2::zeros(nx, ny);
        for k in 0..nz {
            let d4u = self.del4(&state.u[k]);
            let d4v = self.del4(&state.v[k]);
            for j in 1..ny - 1 {
                for i in 0..nx {
                    let kk = self.grid.idx(i, j);
                    if !self.mask[kk] {
                        continue;
                    }
                    // Baroclinic pressure gradient (zero-gradient at coast).
                    let pe = if self.mask[self.grid.idx((i + 1) % nx, j)] {
                        phi[k].get((i + 1) % nx, j)
                    } else {
                        phi[k].get(i, j)
                    };
                    let pw = if self.mask[self.grid.idx((i + nx - 1) % nx, j)] {
                        phi[k].get((i + nx - 1) % nx, j)
                    } else {
                        phi[k].get(i, j)
                    };
                    let pn = if self.mask[self.grid.idx(i, j + 1)] {
                        phi[k].get(i, j + 1)
                    } else {
                        phi[k].get(i, j)
                    };
                    let ps = if self.mask[self.grid.idx(i, j - 1)] {
                        phi[k].get(i, j - 1)
                    } else {
                        phi[k].get(i, j)
                    };
                    let mut ax = -(pe - pw) / (2.0 * self.grid.dx[j])
                        - self.cfg.nu4 * d4u.get(i, j) / self.cfg.dt_int;
                    let mut ay = -(pn - ps) / (2.0 * self.grid.dy[j])
                        - self.cfg.nu4 * d4v.get(i, j) / self.cfg.dt_int;
                    if k == 0 {
                        // Wind stress into the top layer.
                        ax += forcing.tau_x.get(i, j) / (RHO_SEAWATER * self.vert.thickness[0]);
                        ay += forcing.tau_y.get(i, j) / (RHO_SEAWATER * self.vert.thickness[0]);
                    }
                    if k == nz - 1 {
                        // Linear bottom drag on the bottom layer.
                        let r = 1.0e-6;
                        ax -= r * self.u_total(state, k, i, j);
                        ay -= r * self.v_total(state, k, i, j);
                    }
                    fx[k].set(i, j, ax);
                    fy[k].set(i, j, ay);
                    let w = self.vert.thickness[k] / self.cfg.depth;
                    mx[(i, j)] += w * ax;
                    my[(i, j)] += w * ay;
                }
            }
        }
        (fx, fy, mx, my)
    }

    /// Internal momentum step: advance baroclinic shear velocities with
    /// the deviation forcings and semi-implicit rotation, then remove any
    /// residual depth mean (it belongs to the barotropic system).
    fn internal_momentum_step(
        &self,
        state: &mut OceanState,
        fx: &[Field2],
        fy: &[Field2],
        mx: &Field2,
        my: &Field2,
        dt: f64,
    ) {
        let (nx, ny, nz) = (self.grid.nx, self.grid.ny, self.cfg.nz);
        for j in 0..ny {
            let f = self.f_row[j];
            let a = f * dt;
            let denom = 1.0 + a * a;
            for i in 0..nx {
                let kk = self.grid.idx(i, j);
                if !self.mask[kk] {
                    continue;
                }
                let mut ubar = 0.0;
                let mut vbar = 0.0;
                for k in 0..nz {
                    let us = state.u[k].get(i, j) + dt * (fx[k].get(i, j) - mx.get(i, j));
                    let vs = state.v[k].get(i, j) + dt * (fy[k].get(i, j) - my.get(i, j));
                    let un = (us + a * vs) / denom;
                    let vn = (vs - a * us) / denom;
                    state.u[k].set(i, j, un);
                    state.v[k].set(i, j, vn);
                    let w = self.vert.thickness[k] / self.cfg.depth;
                    ubar += w * un;
                    vbar += w * vn;
                }
                for k in 0..nz {
                    state.u[k][(i, j)] -= ubar;
                    state.v[k][(i, j)] -= vbar;
                }
            }
        }
    }

    /// Vertical PP mixing + convective adjustment for one column sweep
    /// over the whole grid (implicit, unconditionally stable).
    fn vertical_mixing(&self, state: &mut OceanState, dt: f64) {
        let (nx, ny, nz) = (self.grid.nx, self.grid.ny, self.cfg.nz);
        let dz = &self.vert.thickness;
        let mut tcol = vec![0.0; nz];
        let mut scol = vec![0.0; nz];
        let mut ucol = vec![0.0; nz];
        let mut vcol = vec![0.0; nz];
        let mut nu_int = vec![0.0; nz - 1];
        let mut k_int = vec![0.0; nz - 1];
        for j in 0..ny {
            for i in 0..nx {
                if !self.mask[self.grid.idx(i, j)] {
                    continue;
                }
                for k in 0..nz {
                    tcol[k] = state.t[k].get(i, j);
                    scol[k] = state.s[k].get(i, j);
                    ucol[k] = self.u_total(state, k, i, j);
                    vcol[k] = self.v_total(state, k, i, j);
                }
                for k in 0..nz - 1 {
                    let dzi = 0.5 * (dz[k] + dz[k + 1]);
                    let ri = richardson(
                        tcol[k],
                        scol[k],
                        ucol[k],
                        vcol[k],
                        tcol[k + 1],
                        scol[k + 1],
                        ucol[k + 1],
                        vcol[k + 1],
                        dzi,
                    );
                    let (nu, kap) = self.cfg.pp.coefficients(ri);
                    nu_int[k] = nu;
                    k_int[k] = kap;
                }
                diffuse_column(&mut tcol, &k_int, dz, dt);
                diffuse_column(&mut scol, &k_int, dz, dt);
                diffuse_column(&mut ucol, &nu_int, dz, dt);
                diffuse_column(&mut vcol, &nu_int, dz, dt);
                convective_adjustment(&mut tcol, &mut scol, dz, 2 * nz);
                let ub = state.baro.u.get(i, j);
                let vb = state.baro.v.get(i, j);
                for k in 0..nz {
                    state.t[k].set(i, j, tcol[k]);
                    state.s[k].set(i, j, scol[k]);
                    state.u[k].set(i, j, ucol[k] - ub);
                    state.v[k].set(i, j, vcol[k] - vb);
                }
            }
        }
    }

    /// Tracer advection (flux form with a small upwind blend), horizontal
    /// diffusion, vertical advection from continuity, surface fluxes and
    /// the FOAM −1.92 °C clamp.
    fn tracer_step(&self, state: &mut OceanState, forcing: &OceanForcing, dt: f64) {
        let (nx, ny, nz) = (self.grid.nx, self.grid.ny, self.cfg.nz);
        let up = self.cfg.upwind;

        // Vertical velocities at layer-top interfaces from continuity.
        let mut w_int = vec![Field2::zeros(nx, ny); nz + 1];
        for kz in (0..nz).rev() {
            for j in 1..ny - 1 {
                let cosc = self.grid.lats[j].cos();
                let cosn = self.grid.lats[j + 1].cos();
                let coss = self.grid.lats[j - 1].cos();
                for i in 0..nx {
                    if !self.mask[self.grid.idx(i, j)] {
                        continue;
                    }
                    let sea = |ii: usize, jj: usize| self.mask[self.grid.idx(ii, jj)];
                    let ie = (i + 1) % nx;
                    let iw = (i + nx - 1) % nx;
                    // Face velocities, identical to those used by the
                    // horizontal tracer fluxes, so that the discrete 3-D
                    // divergence vanishes exactly and flux-form advection
                    // conserves tracers to rounding.
                    let ue = if sea(ie, j) {
                        0.5 * (self.u_total(state, kz, i, j) + self.u_total(state, kz, ie, j))
                    } else {
                        0.0
                    };
                    let uw = if sea(iw, j) {
                        0.5 * (self.u_total(state, kz, iw, j) + self.u_total(state, kz, i, j))
                    } else {
                        0.0
                    };
                    let cosn_f = 0.5 * (cosc + cosn);
                    let coss_f = 0.5 * (cosc + coss);
                    let vn = if sea(i, j + 1) {
                        0.5 * (self.v_total(state, kz, i, j) + self.v_total(state, kz, i, j + 1))
                            * cosn_f
                    } else {
                        0.0
                    };
                    let vs = if sea(i, j - 1) {
                        0.5 * (self.v_total(state, kz, i, j - 1) + self.v_total(state, kz, i, j))
                            * coss_f
                    } else {
                        0.0
                    };
                    let div = (ue - uw) / self.grid.dx[j] + (vn - vs) / (self.grid.dy[j] * cosc);
                    let w_below = w_int[kz + 1].get(i, j);
                    w_int[kz].set(i, j, w_below - div * self.vert.thickness[kz]);
                }
            }
        }

        for tracer in 0..2 {
            // Work on T then S with identical machinery.
            let surf_src: Box<dyn Fn(usize, usize, f64) -> f64> = if tracer == 0 {
                Box::new(|i, j, _old| {
                    forcing.heat.get(i, j) / (RHO_SEAWATER * CP_SEAWATER * self.vert.thickness[0])
                })
            } else {
                Box::new(|i, j, old| {
                    -old * forcing.freshwater.get(i, j) / (RHO_SEAWATER * self.vert.thickness[0])
                })
            };
            for kz in 0..nz {
                let x_old = if tracer == 0 {
                    state.t[kz].clone()
                } else {
                    state.s[kz].clone()
                };
                let x_above = if kz > 0 {
                    Some(if tracer == 0 {
                        state.t[kz - 1].clone()
                    } else {
                        state.s[kz - 1].clone()
                    })
                } else {
                    None
                };
                let x_below = if kz + 1 < nz {
                    Some(if tracer == 0 {
                        state.t[kz + 1].clone()
                    } else {
                        state.s[kz + 1].clone()
                    })
                } else {
                    None
                };
                let mut x_new = x_old.clone();
                for j in 1..ny - 1 {
                    let cosc = self.grid.lats[j].cos();
                    for i in 0..nx {
                        let kk = self.grid.idx(i, j);
                        if !self.mask[kk] {
                            continue;
                        }
                        let sea = |ii: usize, jj: usize| self.mask[self.grid.idx(ii, jj)];
                        let ie = (i + 1) % nx;
                        let iw = (i + nx - 1) % nx;
                        let c0 = x_old.get(i, j);

                        // Horizontal fluxes (zero across coastlines).
                        let mut tend = 0.0;
                        if sea(ie, j) {
                            let uf = 0.5
                                * (self.uv_at(state, kz, i, j).0 + self.uv_at(state, kz, ie, j).0);
                            let xf = face_value(c0, x_old.get(ie, j), uf, up);
                            tend -= uf * xf / self.grid.dx[j];
                        }
                        if sea(iw, j) {
                            let uf = 0.5
                                * (self.uv_at(state, kz, iw, j).0 + self.uv_at(state, kz, i, j).0);
                            let xf = face_value(x_old.get(iw, j), c0, uf, up);
                            tend += uf * xf / self.grid.dx[j];
                        }
                        let cosn = 0.5 * (cosc + self.grid.lats[j + 1].cos());
                        let coss = 0.5 * (cosc + self.grid.lats[j - 1].cos());
                        if sea(i, j + 1) {
                            let vf = 0.5
                                * (self.uv_at(state, kz, i, j).1
                                    + self.uv_at(state, kz, i, j + 1).1);
                            let xf = face_value(c0, x_old.get(i, j + 1), vf, up);
                            tend -= vf * xf * cosn / (self.grid.dy[j] * cosc);
                        }
                        if sea(i, j - 1) {
                            let vf = 0.5
                                * (self.uv_at(state, kz, i, j - 1).1
                                    + self.uv_at(state, kz, i, j).1);
                            let xf = face_value(x_old.get(i, j - 1), c0, vf, up);
                            tend += vf * xf * coss / (self.grid.dy[j] * cosc);
                        }
                        // Flux-form correction: + X ∇·u so that constant
                        // tracers stay constant (divergence compensation).
                        let ue = if sea(ie, j) {
                            0.5 * (self.uv_at(state, kz, i, j).0 + self.uv_at(state, kz, ie, j).0)
                        } else {
                            0.0
                        };
                        let uw2 = if sea(iw, j) {
                            0.5 * (self.uv_at(state, kz, iw, j).0 + self.uv_at(state, kz, i, j).0)
                        } else {
                            0.0
                        };
                        let vn2 = if sea(i, j + 1) {
                            0.5 * (self.uv_at(state, kz, i, j).1
                                + self.uv_at(state, kz, i, j + 1).1)
                                * cosn
                        } else {
                            0.0
                        };
                        let vs2 = if sea(i, j - 1) {
                            0.5 * (self.uv_at(state, kz, i, j - 1).1
                                + self.uv_at(state, kz, i, j).1)
                                * coss
                        } else {
                            0.0
                        };
                        let div =
                            (ue - uw2) / self.grid.dx[j] + (vn2 - vs2) / (self.grid.dy[j] * cosc);
                        tend += c0 * div;

                        // Horizontal diffusion (Laplacian, masked).
                        let mut lap = 0.0;
                        if sea(ie, j) {
                            lap += (x_old.get(ie, j) - c0) / (self.grid.dx[j] * self.grid.dx[j]);
                        }
                        if sea(iw, j) {
                            lap += (x_old.get(iw, j) - c0) / (self.grid.dx[j] * self.grid.dx[j]);
                        }
                        if sea(i, j + 1) {
                            lap += (x_old.get(i, j + 1) - c0) / (self.grid.dy[j] * self.grid.dy[j]);
                        }
                        if sea(i, j - 1) {
                            lap += (x_old.get(i, j - 1) - c0) / (self.grid.dy[j] * self.grid.dy[j]);
                        }
                        tend += self.cfg.kappa_h * lap;

                        // Vertical advection across layer interfaces.
                        let dzk = self.vert.thickness[kz];
                        let w_top = w_int[kz].get(i, j);
                        let w_bot = w_int[kz + 1].get(i, j);
                        // Flux at the top interface (positive upward).
                        // For the surface layer the interface is the
                        // moving free surface: water crossing it carries
                        // the surface concentration, which keeps constant
                        // fields exactly constant (no spurious sources
                        // where the column converges — important because
                        // the slowed barotropic amplifies η by α).
                        let flux_top = if kz == 0 {
                            w_top * c0
                        } else {
                            let xa = x_above.as_ref().unwrap().get(i, j);
                            w_top * if w_top > 0.0 { c0 } else { xa }
                        };
                        let flux_bot = if kz == nz - 1 {
                            0.0
                        } else {
                            let xb = x_below.as_ref().unwrap().get(i, j);
                            w_bot * if w_bot > 0.0 { xb } else { c0 }
                        };
                        tend += (flux_bot - flux_top) / dzk;
                        // Divergence compensation for the vertical part.
                        tend -= c0 * (w_bot - w_top) / dzk;

                        // Surface source on the top layer.
                        if kz == 0 {
                            tend += surf_src(i, j, c0);
                        }

                        let mut newv = c0 + dt * tend;
                        if tracer == 0 && kz == 0 {
                            // FOAM's sea-ice clamp: "a clamp on temperature
                            // is imposed by the ocean model at −1.92 °C".
                            newv = newv.max(SEAWATER_FREEZE_C);
                        }
                        x_new.set(i, j, newv);
                    }
                }
                if tracer == 0 {
                    state.t[kz] = x_new;
                } else {
                    state.s[kz] = x_new;
                }
            }
        }
    }

    #[inline]
    fn uv_at(&self, state: &OceanState, k: usize, i: usize, j: usize) -> (f64, f64) {
        (
            state.u[k].get(i, j) + state.baro.u.get(i, j),
            state.v[k].get(i, j) + state.baro.v.get(i, j),
        )
    }

    fn apply_polar_filter(&self, state: &mut OceanState) {
        if !self.cfg.polar_filter_on {
            return;
        }
        self.filter.apply(&mut state.baro.eta);
        self.filter.apply(&mut state.baro.u);
        self.filter.apply(&mut state.baro.v);
        for k in 0..self.cfg.nz {
            self.filter.apply(&mut state.u[k]);
            self.filter.apply(&mut state.v[k]);
        }
        // Filtering smears across coastlines; re-zero land velocities.
        for j in 0..self.grid.ny {
            for i in 0..self.grid.nx {
                if !self.mask[self.grid.idx(i, j)] {
                    state.baro.u.set(i, j, 0.0);
                    state.baro.v.set(i, j, 0.0);
                    for k in 0..self.cfg.nz {
                        state.u[k].set(i, j, 0.0);
                        state.v[k].set(i, j, 0.0);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // The two stepping schemes
    // ------------------------------------------------------------------

    /// Advance by one coupling interval `dt_couple` with FOAM's nested
    /// scheme: barotropic subcycled inside internal steps, tracers on a
    /// multiple of the internal step. Returns the number of "inner work
    /// units" executed (for the cost accounting of experiments T2/A1).
    pub fn step_coupled(
        &self,
        state: &mut OceanState,
        forcing: &OceanForcing,
        dt_couple: f64,
    ) -> usize {
        let n_int = (dt_couple / self.cfg.dt_int).round().max(1.0) as usize;
        let n_sub = (self.cfg.dt_int / self.baro_sys.max_dt()).ceil().max(1.0) as usize;
        let mut work = 0;
        for _ in 0..n_int {
            let baro_scope = foam_telemetry::scope("baroclinic");
            let (fx, fy, mx, my) = self.momentum_forcings(state, forcing);
            self.internal_momentum_step(state, &fx, &fy, &mx, &my, self.cfg.dt_int);
            drop(baro_scope);
            {
                let _t = foam_telemetry::scope("barotropic");
                self.baro_sys
                    .subcycle(&mut state.baro, &mx, &my, self.cfg.dt_int, n_sub);
            }
            foam_telemetry::count("ocean.barotropic_subcycles", n_sub as u64);
            work += self.cfg.nz + n_sub;
            state.step_count += 1;
            if state.step_count.is_multiple_of(self.cfg.n_trac as u64) {
                let _t = foam_telemetry::scope("tracers");
                let dt_trac = self.cfg.dt_int * self.cfg.n_trac as f64;
                self.tracer_step(state, forcing, dt_trac);
                self.vertical_mixing(state, dt_trac);
                work += 4 * self.cfg.nz;
            }
            {
                let _t = foam_telemetry::scope("polar_filter");
                self.apply_polar_filter(state);
            }
            state.sim_t += self.cfg.dt_int;
        }
        work
    }

    /// Advance by `dt_couple` with the naive unsplit scheme: a single
    /// global step limited by the unslowed external gravity-wave CFL;
    /// momentum, free surface *and* tracers all advanced every step.
    /// Same physics, ~30× the work — the T2 baseline.
    pub fn step_unsplit(
        &self,
        state: &mut OceanState,
        forcing: &OceanForcing,
        dt_couple: f64,
    ) -> usize {
        // Full-gravity subsystem for the CFL and the surface update.
        let full = BarotropicSystem::new(self.grid.clone(), self.mask.clone(), self.cfg.depth, 1.0);
        let dt = full.max_dt();
        let n = (dt_couple / dt).ceil().max(1.0) as usize;
        let dt = dt_couple / n as f64;
        let mut work = 0;
        for _ in 0..n {
            let baro_scope = foam_telemetry::scope("baroclinic");
            let (fx, fy, mx, my) = self.momentum_forcings(state, forcing);
            self.internal_momentum_step(state, &fx, &fy, &mx, &my, dt);
            drop(baro_scope);
            {
                let _t = foam_telemetry::scope("barotropic");
                full.step(&mut state.baro, &mx, &my, dt);
            }
            {
                let _t = foam_telemetry::scope("tracers");
                self.tracer_step(state, forcing, dt);
                self.vertical_mixing(state, dt);
            }
            {
                let _t = foam_telemetry::scope("polar_filter");
                self.apply_polar_filter(state);
            }
            work += 1 + 5 * self.cfg.nz;
            state.sim_t += dt;
            state.step_count += 1;
        }
        work
    }

    // ------------------------------------------------------------------
    // Diagnostics
    // ------------------------------------------------------------------

    /// Area-mean SST over sea cells \[°C\].
    pub fn mean_sst(&self, state: &OceanState) -> f64 {
        self.grid.masked_mean(state.t[0].as_slice(), &self.mask)
    }

    /// Volume-integrated heat content anomaly \[J\] relative to 0 °C,
    /// including the water stored in the free-surface displacement at the
    /// surface temperature (the tracer budget exchanges heat with that
    /// reservoir as the surface moves, so it belongs in the total).
    pub fn heat_content(&self, state: &OceanState) -> f64 {
        let mut h = 0.0;
        for j in 0..self.grid.ny {
            let a = self.grid.cell_area(0, j);
            for i in 0..self.grid.nx {
                if !self.mask[self.grid.idx(i, j)] {
                    continue;
                }
                let mut col = state.baro.eta.get(i, j) * state.t[0].get(i, j);
                for k in 0..self.cfg.nz {
                    col += state.t[k].get(i, j) * self.vert.thickness[k];
                }
                h += RHO_SEAWATER * CP_SEAWATER * col * a;
            }
        }
        h
    }

    /// Max |u| over all levels \[m/s\] (stability watch).
    pub fn max_speed(&self, state: &OceanState) -> f64 {
        let mut m = state.baro.u.max_abs().max(state.baro.v.max_abs());
        for k in 0..self.cfg.nz {
            m = m.max(state.u[k].max_abs()).max(state.v[k].max_abs());
        }
        m
    }

    /// True if every prognostic field is finite.
    pub fn is_finite(&self, state: &OceanState) -> bool {
        state.baro.eta.all_finite()
            && state.baro.u.all_finite()
            && state.baro.v.all_finite()
            && state.t.iter().all(Field2::all_finite)
            && state.s.iter().all(Field2::all_finite)
            && state.u.iter().all(Field2::all_finite)
            && state.v.iter().all(Field2::all_finite)
    }
}

/// Blended face value for flux-form advection: centered with an upwind
/// fraction `up` (0 = centered, 1 = fully upwind).
#[inline]
fn face_value(x_minus: f64, x_plus: f64, vel: f64, up: f64) -> f64 {
    let centered = 0.5 * (x_minus + x_plus);
    let upwind = if vel > 0.0 { x_minus } else { x_plus };
    (1.0 - up) * centered + up * upwind
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (OceanModel, OceanState, World) {
        let world = World::earthlike();
        let model = OceanModel::new(OceanConfig::tiny(), &world);
        let state = model.init_state(&world);
        (model, state, world)
    }

    #[test]
    fn init_state_is_physical() {
        let (model, state, _) = setup();
        assert!(model.is_finite(&state));
        let sst = model.mean_sst(&state);
        assert!((5.0..25.0).contains(&sst), "mean SST {sst}");
        // Bottom water colder than surface everywhere at low latitude.
        let jm = model.grid.ny / 2;
        for i in 0..model.grid.nx {
            if model.mask[model.grid.idx(i, jm)] {
                assert!(state.t[0].get(i, jm) > state.t[model.cfg.nz - 1].get(i, jm));
            }
        }
    }

    #[test]
    fn unforced_ocean_is_quiescent_and_conserves_heat() {
        let (model, mut state, _) = setup();
        let forcing = OceanForcing::zeros(&model.grid);
        let h0 = model.heat_content(&state);
        for _ in 0..4 {
            model.step_coupled(&mut state, &forcing, 21_600.0);
        }
        assert!(model.is_finite(&state));
        let h1 = model.heat_content(&state);
        // No surface fluxes → heat conserved to advection-scheme accuracy
        // (the initial state is not in perfect balance, so weak currents
        // appear; conservation should still hold to high relative order).
        assert!(
            ((h1 - h0) / h0).abs() < 1e-4,
            "heat drift {:.3e}",
            (h1 - h0) / h0
        );
        // Residual motions stay small for a day.
        assert!(model.max_speed(&state) < 0.5, "{}", model.max_speed(&state));
    }

    #[test]
    fn wind_driven_spinup_creates_currents() {
        let (model, mut state, world) = setup();
        for _ in 0..8 {
            let f = OceanForcing::climatological(&model.grid, &world, &model.sst(&state));
            model.step_coupled(&mut state, &f, 21_600.0);
        }
        assert!(model.is_finite(&state));
        let speed = model.max_speed(&state);
        assert!(speed > 0.01, "no circulation: {speed}");
        assert!(speed < 3.0, "runaway circulation: {speed}");
    }

    #[test]
    fn surface_heating_warms_only_the_surface_first() {
        // Compare a heated run against an unheated control (the initial
        // geostrophic-adjustment transient affects both identically).
        let (model, state0, _) = setup();
        let mut heated = state0.clone();
        let mut control = state0.clone();
        let mut fh = OceanForcing::zeros(&model.grid);
        fh.heat.fill(200.0); // strong uniform heating
        let f0 = OceanForcing::zeros(&model.grid);
        let t_deep0 = state0.t[model.cfg.nz - 1].clone();
        for _ in 0..4 {
            model.step_coupled(&mut heated, &fh, 21_600.0);
            model.step_coupled(&mut control, &f0, 21_600.0);
        }
        let d_sst = model.mean_sst(&heated) - model.mean_sst(&control);
        // Expected: Q·t/(ρ c_p Δz₀) ≈ 0.066 K for these parameters.
        let expect = 200.0 * 86_400.0 / (RHO_SEAWATER * CP_SEAWATER * model.vert.thickness[0]);
        assert!(
            (d_sst / expect - 1.0).abs() < 0.3,
            "ΔSST {d_sst} vs expected {expect}"
        );
        // Deep tropical/midlatitude water essentially untouched in one
        // day (polar columns may convect, which reaches the bottom).
        let mut dmax = 0.0f64;
        for j in 0..model.grid.ny {
            if model.grid.lats[j].to_degrees().abs() > 45.0 {
                continue;
            }
            for i in 0..model.grid.nx {
                if model.mask[model.grid.idx(i, j)] {
                    let d = (heated.t[model.cfg.nz - 1].get(i, j) - t_deep0.get(i, j)).abs();
                    dmax = dmax.max(d);
                }
            }
        }
        assert!(dmax < 0.05, "deep warmed too fast: {dmax}");
    }

    #[test]
    fn sst_clamp_holds_at_freezing() {
        let (model, mut state, _) = setup();
        let mut forcing = OceanForcing::zeros(&model.grid);
        forcing.heat.fill(-1500.0); // brutal cooling
        for _ in 0..8 {
            model.step_coupled(&mut state, &forcing, 21_600.0);
        }
        for j in 0..model.grid.ny {
            for i in 0..model.grid.nx {
                if model.mask[model.grid.idx(i, j)] {
                    assert!(
                        state.t[0].get(i, j) >= SEAWATER_FREEZE_C - 1e-9,
                        "SST below clamp at ({i},{j}): {}",
                        state.t[0].get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn freshwater_flux_freshens_surface() {
        let (model, mut state, _) = setup();
        let mut forcing = OceanForcing::zeros(&model.grid);
        forcing.freshwater.fill(5.0e-5); // ~4.3 mm/day everywhere
        let s0 = model.grid.masked_mean(state.s[0].as_slice(), &model.mask);
        for _ in 0..8 {
            model.step_coupled(&mut state, &forcing, 21_600.0);
        }
        let s1 = model.grid.masked_mean(state.s[0].as_slice(), &model.mask);
        assert!(s1 < s0, "salinity should drop: {s0} → {s1}");
    }

    #[test]
    fn split_and_unsplit_agree_for_a_quiet_day() {
        // The splitting is an *efficiency* device: for gentle forcing the
        // two schemes should land close to each other after a day.
        let world = World::earthlike();
        let model = OceanModel::new(OceanConfig::tiny(), &world);
        let mut a = model.init_state(&world);
        let mut b = a.clone();
        let mut forcing = OceanForcing::zeros(&model.grid);
        forcing.tau_x.fill(0.02);
        let work_split = model.step_coupled(&mut a, &forcing, 86_400.0);
        let work_unsplit = model.step_unsplit(&mut b, &forcing, 86_400.0);
        assert!(model.is_finite(&a) && model.is_finite(&b));
        // Area-mean SSTs agree closely (pointwise coastal values are
        // sensitive to the scheme's step size during the initial
        // adjustment transient, so the basin-mean is the right metric
        // for "slowing the free surface changes little").
        let dmean = (model.mean_sst(&a) - model.mean_sst(&b)).abs();
        assert!(dmean < 0.1, "schemes diverged: mean ΔSST = {dmean}");
        // And the split scheme does far less work — the whole point.
        assert!(
            work_unsplit > 5 * work_split,
            "unsplit {work_unsplit} vs split {work_split}"
        );
    }

    #[test]
    fn polar_filter_can_be_disabled() {
        let world = World::earthlike();
        let mut cfg = OceanConfig::tiny();
        cfg.polar_filter_on = false;
        let model = OceanModel::new(cfg, &world);
        let mut state = model.init_state(&world);
        let forcing = OceanForcing::zeros(&model.grid);
        model.step_coupled(&mut state, &forcing, 21_600.0);
        assert!(model.is_finite(&state));
    }

    #[test]
    fn baroclinic_velocities_have_zero_depth_mean() {
        let (model, mut state, world) = setup();
        let f = OceanForcing::climatological(&model.grid, &world, &model.sst(&state));
        model.step_coupled(&mut state, &f, 43_200.0);
        for j in 1..model.grid.ny - 1 {
            for i in 0..model.grid.nx {
                if !model.mask[model.grid.idx(i, j)] {
                    continue;
                }
                let mut ubar = 0.0;
                for k in 0..model.cfg.nz {
                    ubar += state.u[k].get(i, j) * model.vert.thickness[k] / model.cfg.depth;
                }
                assert!(ubar.abs() < 1e-10, "depth mean {ubar} at ({i},{j})");
            }
        }
    }
}

impl OceanModel {
    /// Meridional overturning streamfunction Ψ(y, z) \[Sv\] from the
    /// *baroclinic* (depth-mean-free) velocities: Ψ at latitude row j and
    /// interface k is the net northward transport above that interface,
    /// ∫∫ v′ dx dz. The deep-ocean circulation whose long-period
    /// variations motivate the whole FOAM project ("Variations in deep
    /// ocean circulation are believed to be the dominant mechanism for
    /// climate changes on long time scales"). The barotropic part is
    /// excluded: with a (slowed) free surface its net meridional
    /// transport rings during adjustment, while the depth-mean-free part
    /// is the overturning proper — and makes Ψ close at the bottom
    /// exactly.
    ///
    /// Returns a `(ny × (nz+1))` matrix, row-major in j, in Sverdrups
    /// (10⁶ m³/s); Ψ = 0 at the surface interface by construction.
    pub fn overturning_streamfunction(&self, state: &OceanState) -> Vec<f64> {
        let (nx, ny, nz) = (self.grid.nx, self.grid.ny, self.cfg.nz);
        let mut psi = vec![0.0; ny * (nz + 1)];
        for j in 0..ny {
            let mut acc = 0.0;
            for k in 0..nz {
                // Zonally integrated northward transport of layer k.
                let mut vdx = 0.0;
                for i in 0..nx {
                    if self.mask[self.grid.idx(i, j)] {
                        vdx += state.v[k].get(i, j) * self.grid.dx[j];
                    }
                }
                acc -= vdx * self.vert.thickness[k];
                psi[j * (nz + 1) + (k + 1)] = acc / 1.0e6;
            }
        }
        psi
    }

    /// Peak absolute overturning \[Sv\] (a one-number MOC diagnostic).
    pub fn max_overturning(&self, state: &OceanState) -> f64 {
        self.overturning_streamfunction(state)
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod moc_tests {
    use super::*;

    #[test]
    fn resting_ocean_has_zero_overturning() {
        let world = World::earthlike();
        let model = OceanModel::new(OceanConfig::tiny(), &world);
        let state = model.init_state(&world);
        assert_eq!(model.max_overturning(&state), 0.0);
    }

    #[test]
    fn surface_at_psi_zero_and_finite_everywhere() {
        let world = World::earthlike();
        let model = OceanModel::new(OceanConfig::tiny(), &world);
        let mut state = model.init_state(&world);
        let f = OceanForcing::climatological(&model.grid, &world, &model.sst(&state));
        for _ in 0..8 {
            model.step_coupled(&mut state, &f, 21_600.0);
        }
        let psi = model.overturning_streamfunction(&state);
        let nzp = model.cfg.nz + 1;
        for j in 0..model.grid.ny {
            assert_eq!(psi[j * nzp], 0.0, "surface interface must be 0");
        }
        assert!(psi.iter().all(|v| v.is_finite()));
        // Wind-driven spin-up must produce *some* overturning, with a
        // magnitude in the single-to-tens of Sverdrups band.
        let peak = model.max_overturning(&state);
        assert!(peak > 0.01, "no overturning developed: {peak} Sv");
        assert!(peak < 300.0, "unphysical overturning: {peak} Sv");
    }
}
