//! Equation of state and static-stability helpers.
//!
//! A linearized seawater EOS around (T₀ = 10 °C, S₀ = 34.7 psu) — the
//! standard choice for efficiency-focused z-coordinate climate oceans of
//! this vintage (the full UNESCO polynomial buys nothing for the
//! phenomena FOAM targets).

use foam_grid::constants::{RHO_SEAWATER, S_REF};

/// Thermal expansion coefficient \[°C⁻¹\].
pub const ALPHA_T: f64 = 2.0e-4;
/// Haline contraction coefficient \[psu⁻¹\].
pub const BETA_S: f64 = 7.6e-4;
/// Reference temperature \[°C\].
pub const T_REF: f64 = 10.0;

/// In-situ density \[kg/m³\] from temperature \[°C\] and salinity \[psu\].
#[inline]
pub fn density(t: f64, s: f64) -> f64 {
    RHO_SEAWATER * (1.0 - ALPHA_T * (t - T_REF) + BETA_S * (s - S_REF))
}

/// Density anomaly ρ′ = ρ − ρ₀ \[kg/m³\].
#[inline]
pub fn density_anomaly(t: f64, s: f64) -> f64 {
    RHO_SEAWATER * (-ALPHA_T * (t - T_REF) + BETA_S * (s - S_REF))
}

/// Squared buoyancy frequency N² \[s⁻²\] between two vertically adjacent
/// samples (upper first), separated by `dz` \[m\].
#[inline]
pub fn brunt_vaisala_sq(t_up: f64, s_up: f64, t_dn: f64, s_dn: f64, dz: f64) -> f64 {
    let g = foam_grid::constants::GRAVITY;
    let drho = density(t_dn, s_dn) - density(t_up, s_up);
    g * drho / (RHO_SEAWATER * dz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_water_is_lighter() {
        assert!(density(25.0, S_REF) < density(5.0, S_REF));
    }

    #[test]
    fn salty_water_is_denser() {
        assert!(density(T_REF, 36.0) > density(T_REF, 33.0));
    }

    #[test]
    fn reference_point_is_rho0() {
        assert!((density(T_REF, S_REF) - RHO_SEAWATER).abs() < 1e-9);
    }

    #[test]
    fn typical_density_range() {
        // Ocean densities live in ~1020–1030 kg/m³.
        for (t, s) in [(28.0, 34.0), (2.0, 34.9), (10.0, 35.5)] {
            let r = density(t, s);
            assert!((1018.0..1032.0).contains(&r), "rho({t},{s}) = {r}");
        }
    }

    #[test]
    fn stable_stratification_gives_positive_n2() {
        // Warm over cold: stable.
        let n2 = brunt_vaisala_sq(20.0, S_REF, 5.0, S_REF, 100.0);
        assert!(n2 > 0.0);
        // Magnitude ~1e-4..1e-5 s⁻² for a thermocline.
        assert!((1.0e-6..1.0e-3).contains(&n2), "N² = {n2}");
        // Cold over warm: unstable.
        assert!(brunt_vaisala_sq(5.0, S_REF, 20.0, S_REF, 100.0) < 0.0);
    }
}
