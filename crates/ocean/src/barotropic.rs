//! The slowed, mode-split free-surface (barotropic) subsystem.
//!
//! FOAM's ocean explicitly represents the free surface but (1) slows its
//! dynamics artificially — g → g/α, which Tobis & Anderson show leaves
//! the internal motions essentially unchanged — and (2) integrates it as
//! a separate 2-D system subcycled inside the 3-D internal step
//! (Killworth et al. free-surface splitting). Together these turn the
//! harshest CFL constraint of a free-surface ocean (external gravity
//! waves at √(gH) ≈ 220 m/s) into a cheap 2-D loop at √(gH/α).
//!
//! Forward–backward time stepping (velocities first, then the surface
//! with the *new* velocities) with semi-implicit Coriolis rotation; a
//! weak surface smoother suppresses the A-grid checkerboard mode.

use foam_grid::constants::{coriolis, GRAVITY};
use foam_grid::{Field2, OceanGrid};

/// The 2-D subsystem bound to a grid, mask and mean depth.
#[derive(Debug, Clone)]
pub struct BarotropicSystem {
    pub grid: OceanGrid,
    /// `true` = sea.
    pub mask: Vec<bool>,
    /// Mean depth H \[m\].
    pub depth: f64,
    /// Gravity-wave slowdown factor α ≥ 1 (paper's "artificially slowed"
    /// free surface; 1 recovers the physical system).
    pub slowdown: f64,
    /// Linear bottom drag \[s⁻¹\].
    pub drag: f64,
    /// Disable rotation (for wave-speed unit tests).
    pub coriolis_on: bool,
    /// Per-row Coriolis parameter.
    f_row: Vec<f64>,
}

/// Free-surface state: elevation and depth-mean velocities.
#[derive(Debug, Clone)]
pub struct BarotropicState {
    pub eta: Field2,
    pub u: Field2,
    pub v: Field2,
}

impl BarotropicState {
    pub fn rest(grid: &OceanGrid) -> Self {
        BarotropicState {
            eta: Field2::zeros(grid.nx, grid.ny),
            u: Field2::zeros(grid.nx, grid.ny),
            v: Field2::zeros(grid.nx, grid.ny),
        }
    }
}

impl foam_ckpt::Codec for BarotropicState {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.eta.encode(buf);
        self.u.encode(buf);
        self.v.encode(buf);
    }
    fn decode(r: &mut foam_ckpt::ByteReader<'_>) -> Result<Self, foam_ckpt::CkptError> {
        Ok(BarotropicState {
            eta: Field2::decode(r)?,
            u: Field2::decode(r)?,
            v: Field2::decode(r)?,
        })
    }
}

impl BarotropicSystem {
    pub fn new(grid: OceanGrid, mask: Vec<bool>, depth: f64, slowdown: f64) -> Self {
        assert!(slowdown >= 1.0);
        assert_eq!(mask.len(), grid.len());
        let f_row = grid.lats.iter().map(|&l| coriolis(l)).collect();
        BarotropicSystem {
            grid,
            mask,
            depth,
            slowdown,
            drag: 1.0e-6,
            coriolis_on: true,
            f_row,
        }
    }

    /// Effective (slowed) gravity \[m/s²\].
    #[inline]
    pub fn g_eff(&self) -> f64 {
        GRAVITY / self.slowdown
    }

    /// Slowed external gravity-wave speed \[m/s\].
    pub fn wave_speed(&self) -> f64 {
        (self.g_eff() * self.depth).sqrt()
    }

    /// CFL-limited time step for this subsystem \[s\].
    pub fn max_dt(&self) -> f64 {
        let dx_min = self
            .grid
            .dx
            .iter()
            .chain(self.grid.dy.iter())
            .cloned()
            .fold(f64::INFINITY, f64::min);
        0.5 * dx_min / self.wave_speed()
    }

    /// Surface value with a zero-gradient (no pressure force) condition
    /// across coastlines.
    #[inline]
    fn eta_at(&self, eta: &Field2, i: isize, j: usize, i0: usize, j0: usize) -> f64 {
        let nx = self.grid.nx as isize;
        let iw = (((i % nx) + nx) % nx) as usize;
        if self.mask[self.grid.idx(iw, j)] {
            eta.get(iw, j)
        } else {
            eta.get(i0, j0)
        }
    }

    /// One forward–backward step: `fx`, `fy` are body accelerations
    /// \[m/s²\] (wind stress / H, vertically integrated baroclinic
    /// forcing).
    pub fn step(&self, st: &mut BarotropicState, fx: &Field2, fy: &Field2, dt: f64) {
        let g = &self.grid;
        let (nx, ny) = (g.nx, g.ny);
        let ge = self.g_eff();

        // --- Momentum (semi-implicit rotation). -----------------------
        for j in 0..ny {
            let f = if self.coriolis_on { self.f_row[j] } else { 0.0 };
            let a = f * dt;
            let denom = 1.0 + a * a;
            for i in 0..nx {
                let k = g.idx(i, j);
                if !self.mask[k] {
                    st.u.set(i, j, 0.0);
                    st.v.set(i, j, 0.0);
                    continue;
                }
                let detadx = (self.eta_at(&st.eta, i as isize + 1, j, i, j)
                    - self.eta_at(&st.eta, i as isize - 1, j, i, j))
                    / (2.0 * g.dx[j]);
                let detady = if j > 0 && j < ny - 1 {
                    let n = if self.mask[g.idx(i, j + 1)] {
                        st.eta.get(i, j + 1)
                    } else {
                        st.eta.get(i, j)
                    };
                    let s = if self.mask[g.idx(i, j - 1)] {
                        st.eta.get(i, j - 1)
                    } else {
                        st.eta.get(i, j)
                    };
                    (n - s) / (2.0 * g.dy[j])
                } else {
                    0.0
                };
                // Explicit accelerations except rotation.
                let au = -ge * detadx + fx.get(i, j) - self.drag * st.u.get(i, j);
                let av = -ge * detady + fy.get(i, j) - self.drag * st.v.get(i, j);
                let us = st.u.get(i, j) + dt * au;
                let vs = st.v.get(i, j) + dt * av;
                // Semi-implicit rotation of (us, vs) by f dt.
                let un = (us + a * vs) / denom;
                let vn = (vs - a * us) / denom;
                st.u.set(i, j, un);
                st.v.set(i, j, vn);
            }
        }

        // --- Continuity with the *new* velocities (backward part), in
        // exactly conservative finite-volume form: volume fluxes through
        // faces, zero through coastlines and the domain's N/S walls. ----
        let mut eta_new = st.eta.clone();
        let sea = |i: usize, j: usize| self.mask[g.idx(i, j)];
        for j in 1..ny - 1 {
            // Face lengths: x-faces have length dy; y-faces have length
            // dx evaluated at the face latitude.
            let dxf_n = 0.5 * (g.dx[j] + g.dx[j + 1]);
            let dxf_s = 0.5 * (g.dx[j] + g.dx[j - 1]);
            for i in 0..nx {
                if !sea(i, j) {
                    continue;
                }
                let area = g.cell_area(i, j);
                let ie = (i + 1) % nx;
                let iw = (i + nx - 1) % nx;
                let fe = if sea(ie, j) {
                    0.5 * (st.u.get(i, j) + st.u.get(ie, j)) * g.dy[j]
                } else {
                    0.0
                };
                let fw = if sea(iw, j) {
                    0.5 * (st.u.get(iw, j) + st.u.get(i, j)) * g.dy[j]
                } else {
                    0.0
                };
                let fn_ = if j + 1 < ny - 1 && sea(i, j + 1) {
                    0.5 * (st.v.get(i, j) + st.v.get(i, j + 1)) * dxf_n
                } else {
                    0.0
                };
                let fs = if j > 1 && sea(i, j - 1) {
                    0.5 * (st.v.get(i, j - 1) + st.v.get(i, j)) * dxf_s
                } else {
                    0.0
                };
                let div = (fe - fw + fn_ - fs) / area;
                eta_new.set(i, j, st.eta.get(i, j) - dt * self.depth * div);
            }
        }
        // Weak conservative smoother on η (flux exchange between sea
        // neighbours) to suppress the unstaggered-grid checkerboard —
        // the 2-D counterpart of the paper's ∇⁴ dissipation.
        let c = 0.01;
        st.eta = eta_new.clone();
        for j in 1..ny - 1 {
            for i in 0..nx {
                if !sea(i, j) {
                    continue;
                }
                let ie = (i + 1) % nx;
                let a0 = g.cell_area(i, j);
                if sea(ie, j) {
                    let f = c * (eta_new.get(ie, j) - eta_new.get(i, j));
                    st.eta[(i, j)] += 0.5 * f;
                    st.eta[(ie, j)] -= 0.5 * f * a0 / g.cell_area(ie, j);
                }
                if j + 1 < ny - 1 && sea(i, j + 1) {
                    let f = c * (eta_new.get(i, j + 1) - eta_new.get(i, j));
                    st.eta[(i, j)] += 0.5 * f;
                    st.eta[(i, j + 1)] -= 0.5 * f * a0 / g.cell_area(i, j + 1);
                }
            }
        }
    }

    /// Subcycle the subsystem over `dt_total` in `n_sub` equal steps.
    pub fn subcycle(
        &self,
        st: &mut BarotropicState,
        fx: &Field2,
        fy: &Field2,
        dt_total: f64,
        n_sub: usize,
    ) {
        let dt = dt_total / n_sub as f64;
        for _ in 0..n_sub {
            self.step(st, fx, fy, dt);
        }
    }

    /// Area-integrated surface volume anomaly \[m³\] (conservation check).
    pub fn volume(&self, st: &BarotropicState) -> f64 {
        let g = &self.grid;
        let mut v = 0.0;
        for j in 0..g.ny {
            for i in 0..g.nx {
                if self.mask[g.idx(i, j)] {
                    v += st.eta.get(i, j) * g.cell_area(i, j);
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> BarotropicSystem {
        // An all-sea band: periodic zonal channel.
        let grid = OceanGrid::mercator(32, 16, 60.0);
        let mask = vec![true; grid.len()];
        let mut sys = BarotropicSystem::new(grid, mask, 4000.0, 16.0);
        sys.coriolis_on = false;
        sys.drag = 0.0;
        sys
    }

    #[test]
    fn slowdown_reduces_wave_speed_and_raises_dt() {
        let grid = OceanGrid::mercator(32, 16, 60.0);
        let mask = vec![true; grid.len()];
        let fast = BarotropicSystem::new(grid.clone(), mask.clone(), 4000.0, 1.0);
        let slow = BarotropicSystem::new(grid, mask, 4000.0, 16.0);
        assert!((fast.wave_speed() / slow.wave_speed() - 4.0).abs() < 1e-12);
        assert!((slow.max_dt() / fast.max_dt() - 4.0).abs() < 1e-9);
        // Physical external wave speed ≈ √(gH) ≈ 198 m/s for H = 4000 m.
        assert!((fast.wave_speed() - 198.0).abs() < 2.0);
    }

    #[test]
    fn gravity_wave_oscillates_at_shallow_water_frequency() {
        let sys = channel();
        let g = &sys.grid;
        let mut st = BarotropicState::rest(g);
        // Standing zonal wave, uniform in latitude: η = A cos(kx),
        // k = 2π/L with L the domain circumference at the mid-row.
        let jm = g.ny / 2;
        let m = 2.0; // wavenumber 2 around the circle
        for j in 0..g.ny {
            for i in 0..g.nx {
                st.eta.set(
                    i,
                    j,
                    0.01 * (m * 2.0 * std::f64::consts::PI * i as f64 / g.nx as f64).cos(),
                );
            }
        }
        // Wave at row jm: k = m / (a cosφ) — expected period 2π/(c k).
        let circumference = g.dx[jm] * g.nx as f64;
        let k = m * 2.0 * std::f64::consts::PI / circumference;
        let period = 2.0 * std::f64::consts::PI / (sys.wave_speed() * k);
        let dt = sys.max_dt() * 0.5;
        let zero = Field2::zeros(g.nx, g.ny);
        // After half a period the pattern should be inverted at mid-row.
        let steps = (0.5 * period / dt).round() as usize;
        let before = st.eta.get(0, jm);
        for _ in 0..steps {
            sys.step(&mut st, &zero, &zero, dt);
        }
        let after = st.eta.get(0, jm);
        assert!(
            after < -0.4 * before,
            "expected inversion: before {before}, after {after} (steps {steps})"
        );
    }

    #[test]
    fn volume_is_conserved() {
        let sys = channel();
        let g = &sys.grid;
        let mut st = BarotropicState::rest(g);
        for j in 2..g.ny - 2 {
            for i in 0..g.nx {
                st.eta.set(i, j, 0.05 * ((i + j) as f64 * 0.7).sin());
            }
        }
        let v0 = sys.volume(&st);
        let zero = Field2::zeros(g.nx, g.ny);
        let dt = sys.max_dt() * 0.5;
        for _ in 0..200 {
            sys.step(&mut st, &zero, &zero, dt);
        }
        let v1 = sys.volume(&st);
        let area_scale = 4.0e14; // ~ocean area, for a relative scale
        assert!(
            (v1 - v0).abs() / area_scale < 1e-6,
            "volume drift {v0} → {v1}"
        );
        assert!(st.eta.all_finite() && st.u.all_finite());
    }

    #[test]
    fn subcycling_stays_stable_where_single_step_blows_up() {
        let sys = channel();
        let g = &sys.grid;
        let zero = Field2::zeros(g.nx, g.ny);
        let dt_big = sys.max_dt() * 8.0;

        // Single big steps: unstable.
        let mut bad = BarotropicState::rest(g);
        bad.eta.set(5, 8, 0.1);
        for _ in 0..50 {
            sys.step(&mut bad, &zero, &zero, dt_big);
        }
        let bad_max = bad.eta.max_abs();

        // Same span, subcycled: stable.
        let mut good = BarotropicState::rest(g);
        good.eta.set(5, 8, 0.1);
        for _ in 0..50 {
            sys.subcycle(&mut good, &zero, &zero, dt_big, 16);
        }
        let good_max = good.eta.max_abs();
        assert!(
            !(bad_max.is_finite() && bad_max < 1.0),
            "expected instability at 8× CFL, max = {bad_max}"
        );
        assert!(
            good_max < 0.2,
            "subcycled run should stay bounded: {good_max}"
        );
    }

    #[test]
    fn wind_stress_drives_circulation() {
        let grid = OceanGrid::mercator(32, 16, 60.0);
        let mask = vec![true; grid.len()];
        let sys = BarotropicSystem::new(grid, mask, 4000.0, 16.0);
        let g = &sys.grid;
        let mut st = BarotropicState::rest(g);
        // Zonal wind-stress acceleration.
        let fx = Field2::filled(g.nx, g.ny, 1.0e-6);
        let fy = Field2::zeros(g.nx, g.ny);
        let dt = sys.max_dt() * 0.5;
        for _ in 0..100 {
            sys.step(&mut st, &fx, &fy, dt);
        }
        assert!(st.u.max_abs() > 0.0);
        assert!(st.eta.all_finite());
    }

    #[test]
    fn land_cells_stay_quiet() {
        let grid = OceanGrid::mercator(16, 12, 55.0);
        let mut mask = vec![true; grid.len()];
        for j in 0..grid.ny {
            mask[grid.idx(7, j)] = false; // meridional wall
        }
        let sys = BarotropicSystem::new(grid, mask, 3000.0, 16.0);
        let g = &sys.grid;
        let mut st = BarotropicState::rest(g);
        st.eta.set(3, 6, 0.2);
        let zero = Field2::zeros(g.nx, g.ny);
        let dt = sys.max_dt() * 0.4;
        for _ in 0..100 {
            sys.step(&mut st, &zero, &zero, dt);
        }
        for j in 0..g.ny {
            assert_eq!(st.u.get(7, j), 0.0);
            assert_eq!(st.v.get(7, j), 0.0);
        }
        assert!(st.eta.all_finite());
    }
}
