//! `foam-ocean` — the FOAM ocean component (the Wisconsin parallel ocean
//! model of Anderson & Tobis).
//!
//! A z-coordinate primitive-equation ocean on an *unstaggered* (A-grid)
//! Mercator lattice (128 × 128 × 16 in the paper), with ∇⁴ dissipation to
//! suppress the A-grid computational mode, a Fourier polar filter in the
//! Arctic, Pacanowski–Philander vertical mixing with the steeper
//! Richardson dependency of Peters–Gregg–Toole, and convective
//! adjustment.
//!
//! The paper's claim to "the most computationally efficient ocean model
//! in existence" rests on three techniques, all implemented here:
//!
//! 1. **slowed free surface** ([`barotropic`]): external gravity waves
//!    are artificially slowed (g → g/α), which Tobis's thesis shows makes
//!    little difference to the internal motions while relaxing the
//!    harshest CFL limit;
//! 2. **mode splitting**: the 2-D free-surface subsystem is subcycled
//!    with a short step inside the 3-D internal step;
//! 3. **subcycled time stepping**: the internal (Coriolis + baroclinic
//!    pressure) step is itself shorter than the advection/diffusion step
//!    for the tracers.
//!
//! [`OceanModel::step_coupled`] runs that nested scheme; the **unsplit
//! baseline** ([`OceanModel::step_unsplit`]) integrates the same physics
//! with one global step limited by the full-gravity external wave speed —
//! the comparator for experiment T2/A1 (the ~10× FLOPs-per-simulated-time
//! claim).

pub mod barotropic;
pub mod eos;
pub mod mixing;
pub mod model;
pub mod polar;

pub use model::{OceanConfig, OceanForcing, OceanModel, OceanState, SplitScheme};
