//! Vertical mixing: Pacanowski–Philander Richardson-number closure (with
//! the steeper dependency FOAM adopts from the Peters–Gregg–Toole
//! analysis) and convective adjustment, both acting column-wise.

use crate::eos::{brunt_vaisala_sq, density};

/// PP81 parameters.
#[derive(Debug, Clone, Copy)]
pub struct PpParams {
    /// Maximum shear-driven viscosity \[m²/s\].
    pub nu0: f64,
    /// Background viscosity \[m²/s\].
    pub nu_b: f64,
    /// Background diffusivity \[m²/s\].
    pub kappa_b: f64,
    /// Richardson-function coefficient (PP81 uses 5.0).
    pub alpha: f64,
    /// Richardson exponent: PP81 uses 2 for viscosity; FOAM uses a
    /// *steeper* dependency (3) per Peters et al., which reduces the
    /// west-Pacific cold bias (paper §"The FOAM Ocean Model").
    pub exponent: i32,
}

impl Default for PpParams {
    fn default() -> Self {
        PpParams {
            nu0: 5.0e-2,
            nu_b: 1.0e-4,
            kappa_b: 1.0e-5,
            alpha: 5.0,
            exponent: 3,
        }
    }
}

impl PpParams {
    /// Viscosity and diffusivity at an interface with Richardson number
    /// `ri` (clipped below at 0 — unstable columns are handled by
    /// convective adjustment).
    pub fn coefficients(&self, ri: f64) -> (f64, f64) {
        let ri = ri.max(0.0);
        let denom = (1.0 + self.alpha * ri).powi(self.exponent);
        let nu = self.nu0 / denom + self.nu_b;
        // PP: diffusivity gets one more power of the denominator.
        let kappa = self.nu0 / (denom * (1.0 + self.alpha * ri)) + self.kappa_b;
        (nu, kappa)
    }
}

/// Interface Richardson number from adjacent layer values.
#[inline]
pub fn richardson(
    t_up: f64,
    s_up: f64,
    u_up: f64,
    v_up: f64,
    t_dn: f64,
    s_dn: f64,
    u_dn: f64,
    v_dn: f64,
    dz: f64,
) -> f64 {
    let n2 = brunt_vaisala_sq(t_up, s_up, t_dn, s_dn, dz);
    let du = u_up - u_dn;
    let dv = v_up - v_dn;
    let shear2 = (du * du + dv * dv) / (dz * dz);
    n2 / shear2.max(1.0e-10)
}

/// Implicit vertical diffusion of a column `x` with per-interface
/// diffusivities `k_int` (length `n − 1`) and layer thicknesses `dz`.
/// Conserves ∑ x·dz exactly (no-flux boundaries).
pub fn diffuse_column(x: &mut [f64], k_int: &[f64], dz: &[f64], dt: f64) {
    let n = x.len();
    if n < 2 {
        return;
    }
    assert_eq!(k_int.len(), n - 1);
    let mut a = vec![0.0; n];
    let mut b = vec![0.0; n];
    let mut c = vec![0.0; n];
    for k in 0..n {
        let g_up = if k > 0 {
            k_int[k - 1] / (0.5 * (dz[k - 1] + dz[k]))
        } else {
            0.0
        };
        let g_dn = if k < n - 1 {
            k_int[k] / (0.5 * (dz[k] + dz[k + 1]))
        } else {
            0.0
        };
        b[k] = 1.0 + dt * (g_up + g_dn) / dz[k];
        if k > 0 {
            a[k] = -dt * g_up / dz[k];
        }
        if k < n - 1 {
            c[k] = -dt * g_dn / dz[k];
        }
    }
    // Thomas algorithm.
    let mut cp = vec![0.0; n];
    let mut dp = vec![0.0; n];
    cp[0] = c[0] / b[0];
    dp[0] = x[0] / b[0];
    for k in 1..n {
        let den = b[k] - a[k] * cp[k - 1];
        cp[k] = c[k] / den;
        dp[k] = (x[k] - a[k] * dp[k - 1]) / den;
    }
    x[n - 1] = dp[n - 1];
    for k in (0..n - 1).rev() {
        x[k] = dp[k] - cp[k] * x[k + 1];
    }
}

/// Complete convective adjustment by mixed-layer extension: wherever
/// density increases upward, merge the unstable layers into one mixed
/// layer (volume-weighted T, S), extend it downward while it remains
/// denser than the layer below, then re-check against the layer above.
/// Terminates with a statically stable column. Returns the number of
/// mixing events + 1 (so a stable column reports 1).
pub fn convective_adjustment(t: &mut [f64], s: &mut [f64], dz: &[f64], max_sweeps: usize) -> usize {
    let n = t.len();
    let mut events = 0usize;
    let mut k = 0usize;
    while k + 1 < n {
        if density(t[k], s[k]) <= density(t[k + 1], s[k + 1]) + 1e-12 {
            k += 1;
            continue;
        }
        // Merge [k ..= end] into one mixed layer, extending downward.
        let mut end = k + 1;
        loop {
            let mut m = 0.0;
            let mut tm = 0.0;
            let mut sm = 0.0;
            for kk in k..=end {
                m += dz[kk];
                tm += dz[kk] * t[kk];
                sm += dz[kk] * s[kk];
            }
            tm /= m;
            sm /= m;
            if end + 1 < n && density(tm, sm) > density(t[end + 1], s[end + 1]) + 1e-12 {
                end += 1;
                continue;
            }
            for kk in k..=end {
                t[kk] = tm;
                s[kk] = sm;
            }
            break;
        }
        events += 1;
        if events >= max_sweeps {
            break;
        }
        // The new mixed layer may now destabilize the layer above.
        k = k.saturating_sub(1);
    }
    events + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use foam_grid::constants::S_REF;

    #[test]
    fn pp_mixing_shuts_down_with_stratification() {
        let p = PpParams::default();
        let (nu_strong, k_strong) = p.coefficients(0.0);
        let (nu_weak, k_weak) = p.coefficients(5.0);
        assert!(nu_strong > 50.0 * nu_weak);
        assert!(k_strong > 50.0 * k_weak);
        // Backgrounds as floors.
        assert!(nu_weak >= p.nu_b && k_weak >= p.kappa_b);
    }

    #[test]
    fn steeper_exponent_cuts_mixing_faster() {
        let pp2 = PpParams {
            exponent: 2,
            ..Default::default()
        };
        let pp3 = PpParams::default();
        let ri = 0.5;
        assert!(pp3.coefficients(ri).0 < pp2.coefficients(ri).0);
        // At Ri = 0 they agree.
        assert!((pp3.coefficients(0.0).0 - pp2.coefficients(0.0).0).abs() < 1e-15);
    }

    #[test]
    fn richardson_sign_tracks_stratification() {
        // Stable, weak shear → large positive Ri.
        let ri = richardson(20.0, S_REF, 0.01, 0.0, 5.0, S_REF, 0.0, 0.0, 50.0);
        assert!(ri > 1.0);
        // Unstable → negative.
        let ri2 = richardson(5.0, S_REF, 0.01, 0.0, 20.0, S_REF, 0.0, 0.0, 50.0);
        assert!(ri2 < 0.0);
    }

    #[test]
    fn diffusion_conserves_heat_content() {
        let dz = [10.0, 20.0, 40.0, 80.0];
        let mut t = [25.0, 18.0, 10.0, 4.0];
        let total0: f64 = t.iter().zip(&dz).map(|(x, d)| x * d).sum();
        diffuse_column(&mut t, &[1e-3, 1e-4, 1e-5], &dz, 86_400.0);
        let total1: f64 = t.iter().zip(&dz).map(|(x, d)| x * d).sum();
        assert!((total1 - total0).abs() < 1e-9 * total0.abs());
        // Smoothing: top cooled, layer below warmed.
        assert!(t[0] < 25.0 && t[1] > 18.0);
    }

    #[test]
    fn diffusion_is_stable_for_huge_dt() {
        let dz = [25.0; 8];
        let mut t = [30.0, 2.0, 30.0, 2.0, 30.0, 2.0, 30.0, 2.0];
        diffuse_column(&mut t, &[0.05; 7], &dz, 1.0e7);
        // Implicit solve → bounded by initial extremes.
        for &v in &t {
            assert!((2.0 - 1e-6..=30.0 + 1e-6).contains(&v));
        }
        // Nearly homogenized.
        assert!((t[0] - t[7]).abs() < 1.0);
    }

    #[test]
    fn convective_adjustment_restores_stability() {
        let dz = [25.0, 35.0, 60.0];
        let mut t = [2.0, 10.0, 12.0]; // cold over warm: unstable
        let mut s = [S_REF; 3];
        let heat0: f64 = t.iter().zip(&dz).map(|(x, d)| x * d).sum();
        let sweeps = convective_adjustment(&mut t, &mut s, &dz, 10);
        assert!(sweeps > 1);
        for k in 0..2 {
            assert!(
                density(t[k], s[k]) <= density(t[k + 1], s[k + 1]) + 1e-9,
                "still unstable at {k}"
            );
        }
        let heat1: f64 = t.iter().zip(&dz).map(|(x, d)| x * d).sum();
        assert!((heat1 - heat0).abs() < 1e-9 * heat0.abs());
    }

    #[test]
    fn stable_column_is_untouched() {
        let dz = [25.0, 35.0];
        let mut t = [20.0, 5.0];
        let mut s = [S_REF; 2];
        assert_eq!(convective_adjustment(&mut t, &mut s, &dz, 10), 1);
        assert_eq!(t, [20.0, 5.0]);
    }
}
