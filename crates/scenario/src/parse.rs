//! The surface syntax: a hand-rolled, line-oriented parser for the
//! TOML-subset scenario format.
//!
//! The grammar is deliberately tiny — small enough to parse with no
//! dependencies and to diagnose precisely:
//!
//! ```text
//! document := (blank | comment | section-header | key-value)*
//! section-header := '[' name (. name)* ']'
//! key-value := ident '=' value
//! value := number | string | bare-word | '[' value (',' value)* ']'
//! comment := '#' ... end-of-line        (also allowed after a value)
//! ```
//!
//! Numbers are IEEE-754 doubles in the usual Rust syntax; strings are
//! double-quoted with no escapes; bare words (`slab`, `ramp`) read as
//! strings so enum-like keys don't need quoting. Every section, key,
//! and value carries a [`Span`] (1-based line and column) so semantic
//! errors can point at the offending source text, not just name it.

use crate::error::ScenarioError;

/// A 1-based (line, column) position in the scenario source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub line: usize,
    pub col: usize,
}

impl Span {
    pub fn new(line: usize, col: usize) -> Self {
        Span { line, col }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}, col {}", self.line, self.col)
    }
}

/// A parsed right-hand-side value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Number(f64),
    /// Both `"quoted"` and bare-word forms land here.
    Str(String),
    Array(Vec<(Span, Value)>),
}

impl Value {
    /// Human name of the value's shape, for "expected X, found Y".
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Number(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
        }
    }
}

/// One `key = value` line.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    pub key: String,
    pub key_span: Span,
    pub value: Value,
    pub value_span: Span,
}

/// One `[name]` block and the entries under it.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    pub name: String,
    pub span: Span,
    pub entries: Vec<Entry>,
}

impl Section {
    /// The entry for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// The whole parsed file, still untyped.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Document {
    pub sections: Vec<Section>,
}

impl Document {
    /// Parse scenario source into sections and entries. Purely
    /// syntactic: unknown sections/keys and range violations are the
    /// semantic layer's business ([`crate::Scenario::from_doc`]).
    pub fn parse(src: &str) -> Result<Document, ScenarioError> {
        let mut doc = Document::default();
        for (idx, raw) in src.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw);
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let col0 = 1 + line.chars().count() - line.trim_start().chars().count();
            if let Some(rest) = trimmed.strip_prefix('[') {
                let span = Span::new(line_no, col0);
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| ScenarioError::Syntax {
                        span,
                        msg: "section header is missing the closing `]`".to_string(),
                    })?;
                let name = name.trim();
                if name.is_empty()
                    || !name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._-".contains(c))
                {
                    return Err(ScenarioError::Syntax {
                        span,
                        msg: format!(
                            "bad section name {name:?} (lowercase letters, digits, `.`, `_`, `-`)"
                        ),
                    });
                }
                if doc.sections.iter().any(|s| s.name == name) {
                    return Err(ScenarioError::Syntax {
                        span,
                        msg: format!("duplicate section [{name}]"),
                    });
                }
                doc.sections.push(Section {
                    name: name.to_string(),
                    span,
                    entries: Vec::new(),
                });
                continue;
            }
            // A key-value line. It must live under some section.
            let eq = trimmed.find('=').ok_or_else(|| ScenarioError::Syntax {
                span: Span::new(line_no, col0),
                msg: "expected `key = value` or a `[section]` header".to_string(),
            })?;
            let key = trimmed[..eq].trim();
            let key_span = Span::new(line_no, col0);
            if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(ScenarioError::Syntax {
                    span: key_span,
                    msg: format!("bad key {key:?} (letters, digits, `_`)"),
                });
            }
            let rhs = &trimmed[eq + 1..];
            let rhs_col = col0 + trimmed[..eq + 1].chars().count();
            let mut vp = VParser::new(rhs, line_no, rhs_col);
            let (value_span, value) = vp.value()?;
            vp.expect_end()?;
            let section = doc
                .sections
                .last_mut()
                .ok_or_else(|| ScenarioError::Syntax {
                    span: key_span,
                    msg: format!("key {key:?} appears before any [section] header"),
                })?;
            if section.entries.iter().any(|e| e.key == key) {
                return Err(ScenarioError::DuplicateKey {
                    span: key_span,
                    key: key.to_string(),
                });
            }
            section.entries.push(Entry {
                key: key.to_string(),
                key_span,
                value,
                value_span,
            });
        }
        Ok(doc)
    }
}

/// Cut a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// A tiny recursive-descent parser for one right-hand-side value.
struct VParser {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    /// Column of `chars[0]` in the original source line.
    col0: usize,
}

impl VParser {
    fn new(src: &str, line: usize, col0: usize) -> Self {
        VParser {
            chars: src.chars().collect(),
            pos: 0,
            line,
            col0,
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col0 + self.pos)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<(Span, Value), ScenarioError> {
        self.skip_ws();
        let span = self.span();
        match self.peek() {
            None => Err(ScenarioError::Syntax {
                span,
                msg: "expected a value after `=`".to_string(),
            }),
            Some('"') => {
                self.pos += 1;
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == '"' {
                        let s: String = self.chars[start..self.pos].iter().collect();
                        self.pos += 1;
                        return Ok((span, Value::Str(s)));
                    }
                    self.pos += 1;
                }
                Err(ScenarioError::Syntax {
                    span,
                    msg: "unterminated string".to_string(),
                })
            }
            Some('[') => {
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(']') => {
                            self.pos += 1;
                            return Ok((span, Value::Array(items)));
                        }
                        None => {
                            return Err(ScenarioError::Syntax {
                                span: self.span(),
                                msg: "unterminated array (missing `]`)".to_string(),
                            })
                        }
                        _ => {}
                    }
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => self.pos += 1,
                        Some(']') => {}
                        _ => {
                            return Err(ScenarioError::Syntax {
                                span: self.span(),
                                msg: "expected `,` or `]` in array".to_string(),
                            })
                        }
                    }
                }
            }
            Some(_) => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_whitespace() || c == ',' || c == ']' {
                        break;
                    }
                    self.pos += 1;
                }
                let tok: String = self.chars[start..self.pos].iter().collect();
                if let Ok(n) = tok.parse::<f64>() {
                    if !n.is_finite() {
                        return Err(ScenarioError::Syntax {
                            span,
                            msg: format!("non-finite number {tok:?}"),
                        });
                    }
                    return Ok((span, Value::Number(n)));
                }
                if tok.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    return Ok((span, Value::Str(tok)));
                }
                Err(ScenarioError::Syntax {
                    span,
                    msg: format!("unrecognized value {tok:?}"),
                })
            }
        }
    }

    fn expect_end(&mut self) -> Result<(), ScenarioError> {
        self.skip_ws();
        if self.peek().is_some() {
            let tail: String = self.chars[self.pos..].iter().collect();
            return Err(ScenarioError::Syntax {
                span: self.span(),
                msg: format!("unexpected trailing input {tail:?}"),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_value_shapes() {
        let doc = Document::parse(
            "# header comment\n\
             [scenario]\n\
             name = \"co2 ramp\"  # trailing comment\n\
             days = 360\n\
             kind = ramp\n\
             [forcing.co2]\n\
             points = [[0, 1.0], [360, 2.0]]\n",
        )
        .unwrap();
        assert_eq!(doc.sections.len(), 2);
        assert_eq!(doc.sections[0].name, "scenario");
        assert_eq!(
            doc.sections[0].get("name").unwrap().value,
            Value::Str("co2 ramp".to_string())
        );
        assert_eq!(
            doc.sections[0].get("days").unwrap().value,
            Value::Number(360.0)
        );
        assert_eq!(
            doc.sections[0].get("kind").unwrap().value,
            Value::Str("ramp".to_string())
        );
        let pts = &doc.sections[1].get("points").unwrap().value;
        match pts {
            Value::Array(rows) => {
                assert_eq!(rows.len(), 2);
                match &rows[1].1 {
                    Value::Array(pair) => {
                        assert_eq!(pair[0].1, Value::Number(360.0));
                        assert_eq!(pair[1].1, Value::Number(2.0));
                    }
                    other => panic!("expected pair, got {other:?}"),
                }
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn spans_point_at_the_offence() {
        let err = Document::parse("[scenario]\n  days 360\n").unwrap_err();
        match err {
            ScenarioError::Syntax { span, .. } => {
                assert_eq!(span, Span::new(2, 3));
            }
            other => panic!("expected syntax error, got {other:?}"),
        }
        let err = Document::parse("[scenario]\ndays = 1\ndays = 2\n").unwrap_err();
        assert!(matches!(err, ScenarioError::DuplicateKey { span, .. } if span.line == 3));
    }

    #[test]
    fn rejects_malformed_lines_without_panicking() {
        for bad in [
            "[unclosed\n",
            "[]\n",
            "[A Bad Name]\n",
            "orphan = 1\n",
            "[s]\nkey = \"unterminated\n",
            "[s]\nkey = [1, 2\n",
            "[s]\nkey = @!#\n",
            "[s]\nkey = 1 trailing\n",
            "[s]\nkey = inf\n",
            "[s]\nkey = nan\n",
            "[s]\nkey =\n",
            "[s]\n= 3\n",
            "[s]\n[s]\n",
        ] {
            let e = Document::parse(bad).unwrap_err();
            // Every error renders with a position.
            assert!(e.to_string().contains("line "), "{bad:?} -> {e}");
        }
    }

    #[test]
    fn comments_inside_strings_are_not_comments() {
        let doc = Document::parse("[s]\nname = \"not # a comment\"\n").unwrap();
        assert_eq!(
            doc.sections[0].get("name").unwrap().value,
            Value::Str("not # a comment".to_string())
        );
    }
}
