//! The semantic layer: typed scenarios, envelope checks, and lowering
//! to runnable model objects.
//!
//! [`Scenario::parse`] turns source text into a [`Scenario`] — every
//! section and key resolved, every value range-checked with a source
//! span. Lowering then produces:
//!
//! * [`Scenario::config`] — a validated [`FoamConfig`] with the
//!   scenario's forcings threaded in (piecewise-linear breakpoint
//!   series the physics evaluates once per simulated day), and
//! * [`Scenario::ensemble`] — when a `[sweep]` section is present, an
//!   [`EnsembleSpec`] whose members carry absolute
//!   [`ParamOverride`]s along the sweep axis.
//!
//! Ramp and pulse shapes compile down to breakpoints at this stage, so
//! the model only ever sees [`ForcingSeries`] — the checkpoint codec,
//! digest, and resume guarantees all operate on the lowered form.

use foam::{CanonicalHasher, FoamConfig};
use foam_ensemble::{EnsembleSpec, ParamOverride};
use foam_physics::{ForcingSeries, Forcings};

use crate::error::ScenarioError;
use crate::parse::{Document, Entry, Section, Span, Value};

/// Admissible envelopes, mirrored from `FoamConfig::validate` so
/// scenario diagnostics can carry spans while the config check remains
/// the backstop.
pub const CO2_RANGE: (f64, f64) = (1.0 / 32.0, 32.0);
pub const SOLAR_RANGE: (f64, f64) = (0.8, 1.2);
pub const AEROSOL_RANGE: (f64, f64) = (0.0, 5.0);
pub const OBLIQUITY_RANGE: (f64, f64) = (0.0, 45.0);

/// Ocean treatment: the full dynamical ocean from the preset, or a
/// slab-like shallow mixed layer (ablation experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OceanKind {
    #[default]
    Full,
    Slab,
}

/// One sweep over a scalar parameter, lowered to ensemble members.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// The knob being swept (`solar_scale`, `co2_factor`,
    /// `aerosol_od`, `obliquity_deg`).
    pub axis: String,
    /// The absolute values the members run at.
    pub values: Vec<f64>,
    /// Ensemble worker threads.
    pub workers: usize,
}

impl Sweep {
    /// The override member `i` carries.
    pub fn override_for(&self, i: usize) -> ParamOverride {
        let v = self.values[i];
        match self.axis.as_str() {
            "solar_scale" => ParamOverride::SolarScale(v),
            "co2_factor" => ParamOverride::Co2Factor(v),
            "aerosol_od" => ParamOverride::AerosolOd(v),
            _ => ParamOverride::ObliquityDeg(v),
        }
    }
}

/// A parsed, validated scenario: ready to lower.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human name (report headers, job listings).
    pub name: String,
    /// Optional free-text description.
    pub description: String,
    /// Base configuration preset: `tiny`, `century`, or `paper`.
    pub preset: String,
    /// Initial-condition seed.
    pub seed: u64,
    /// Simulated days to integrate.
    pub days: f64,
    /// Ocean treatment (full vs slab ablation).
    pub ocean: OceanKind,
    /// Static axial tilt override \[deg\].
    pub obliquity_deg: Option<f64>,
    /// Static CO₂ concentration factor override.
    pub co2_factor: Option<f64>,
    /// Static solar-constant multiplier override.
    pub solar_scale: Option<f64>,
    /// Static aerosol optical depth override.
    pub aerosol_od: Option<f64>,
    /// Time-varying forcings, already lowered to breakpoint series.
    pub forcings: Forcings,
    /// Parameter sweep, if the scenario declares one.
    pub sweep: Option<Sweep>,
}

/// Typed accessors over a parsed [`Entry`].
fn as_number(e: &Entry) -> Result<f64, ScenarioError> {
    match e.value {
        Value::Number(n) => Ok(n),
        ref other => Err(ScenarioError::Expected {
            span: e.value_span,
            key: e.key.clone(),
            expected: "number",
            found: other.kind(),
        }),
    }
}

fn as_str(e: &Entry) -> Result<&str, ScenarioError> {
    match e.value {
        Value::Str(ref s) => Ok(s),
        ref other => Err(ScenarioError::Expected {
            span: e.value_span,
            key: e.key.clone(),
            expected: "string",
            found: other.kind(),
        }),
    }
}

fn check_keys(section: &Section, known: &[&str]) -> Result<(), ScenarioError> {
    for e in &section.entries {
        if !known.contains(&e.key.as_str()) {
            return Err(ScenarioError::UnknownKey {
                span: e.key_span,
                section: section.name.clone(),
                key: e.key.clone(),
            });
        }
    }
    Ok(())
}

fn require<'a>(section: &'a Section, key: &str) -> Result<&'a Entry, ScenarioError> {
    section.get(key).ok_or_else(|| ScenarioError::MissingKey {
        section: section.name.clone(),
        key: key.to_string(),
    })
}

fn in_range(e: &Entry, v: f64, (lo, hi): (f64, f64)) -> Result<f64, ScenarioError> {
    if (lo..=hi).contains(&v) {
        Ok(v)
    } else {
        Err(ScenarioError::OutOfRange {
            span: e.value_span,
            key: e.key.clone(),
            value: v,
            lo,
            hi,
        })
    }
}

/// Lower one `[forcing.*]` section to a breakpoint series.
///
/// `identity` is the channel's no-op value (1.0 for the multiplicative
/// CO₂/solar channels, 0.0 for additive aerosol); pulses rise from and
/// decay back to it.
fn lower_forcing(
    section: &Section,
    identity: f64,
    range: (f64, f64),
) -> Result<ForcingSeries, ScenarioError> {
    let kind_entry = require(section, "kind")?;
    let kind = as_str(kind_entry)?;
    let bad_points = |span: Span, msg: &str| ScenarioError::Invalid {
        span,
        msg: msg.to_string(),
    };
    let series = match kind {
        "constant" => {
            check_keys(section, &["kind", "value"])?;
            let e = require(section, "value")?;
            let v = in_range(e, as_number(e)?, range)?;
            ForcingSeries::constant(v)
        }
        "ramp" => {
            check_keys(
                section,
                &["kind", "from", "to", "start_day", "end_day", "shape"],
            )?;
            let ef = require(section, "from")?;
            let et = require(section, "to")?;
            let from = in_range(ef, as_number(ef)?, range)?;
            let to = in_range(et, as_number(et)?, range)?;
            let es = require(section, "start_day")?;
            let ee = require(section, "end_day")?;
            let start = as_number(es)?;
            let end = as_number(ee)?;
            if !(start.is_finite() && start >= 0.0) {
                return Err(bad_points(es.value_span, "start_day must be >= 0"));
            }
            if !(end.is_finite() && end > start) {
                return Err(bad_points(ee.value_span, "end_day must exceed start_day"));
            }
            let shape = match section.get("shape") {
                None => "linear",
                Some(e) => match as_str(e)? {
                    s @ ("linear" | "exponential") => s,
                    other => {
                        return Err(ScenarioError::Invalid {
                            span: e.value_span,
                            msg: format!("unknown ramp shape {other:?} (linear or exponential)"),
                        })
                    }
                },
            };
            let points = if shape == "linear" {
                vec![(start, from), (end, to)]
            } else {
                // Exponential ramps interpolate geometrically; sample
                // every ~30 days so the piecewise-linear series tracks
                // the curve, pinning the endpoints exactly.
                if from <= 0.0 || to <= 0.0 {
                    return Err(bad_points(
                        ef.value_span,
                        "exponential ramps need positive endpoints",
                    ));
                }
                let n = (((end - start) / 30.0).ceil() as usize).max(1);
                (0..=n)
                    .map(|i| {
                        let f = i as f64 / n as f64;
                        (start + f * (end - start), from * (to / from).powf(f))
                    })
                    .collect()
            };
            ForcingSeries::from_points(points)
                .ok_or_else(|| bad_points(es.value_span, "ramp days must be increasing"))?
        }
        "pulse" => {
            check_keys(
                section,
                &["kind", "peak", "onset_day", "rise_days", "decay_days"],
            )?;
            let ep = require(section, "peak")?;
            let peak = in_range(ep, as_number(ep)?, range)?;
            let eo = require(section, "onset_day")?;
            let er = require(section, "rise_days")?;
            let ed = require(section, "decay_days")?;
            let onset = as_number(eo)?;
            let rise = as_number(er)?;
            let decay = as_number(ed)?;
            if !(onset.is_finite() && onset >= 0.0) {
                return Err(bad_points(eo.value_span, "onset_day must be >= 0"));
            }
            if !(rise.is_finite() && rise > 0.0) {
                return Err(bad_points(er.value_span, "rise_days must be positive"));
            }
            if !(decay.is_finite() && decay > 0.0) {
                return Err(bad_points(ed.value_span, "decay_days must be positive"));
            }
            // Linear rise from the channel identity to the peak, then
            // exponential relaxation back, sampled and cut off at six
            // e-folding times where the final breakpoint pins the
            // identity exactly (so long runs return to baseline
            // bit-for-bit, not asymptotically).
            let t_peak = onset + rise;
            let mut points = vec![(onset, identity), (t_peak, peak)];
            let step = (decay / 10.0).clamp(1.0, 30.0);
            let t_end = t_peak + 6.0 * decay;
            let mut t = t_peak + step;
            while t < t_end {
                points.push((
                    t,
                    identity + (peak - identity) * (-(t - t_peak) / decay).exp(),
                ));
                t += step;
            }
            points.push((t_end, identity));
            ForcingSeries::from_points(points)
                .ok_or_else(|| bad_points(eo.value_span, "pulse produced non-increasing days"))?
        }
        "series" => {
            check_keys(section, &["kind", "points"])?;
            let e = require(section, "points")?;
            let rows = match e.value {
                Value::Array(ref rows) => rows,
                ref other => {
                    return Err(ScenarioError::Expected {
                        span: e.value_span,
                        key: e.key.clone(),
                        expected: "array of [day, value] pairs",
                        found: other.kind(),
                    })
                }
            };
            let mut points = Vec::with_capacity(rows.len());
            for (span, row) in rows {
                let pair = match row {
                    Value::Array(p) if p.len() == 2 => p,
                    _ => {
                        return Err(bad_points(
                            *span,
                            "each series point must be a [day, value] pair",
                        ))
                    }
                };
                let day = match pair[0].1 {
                    Value::Number(d) => d,
                    ref other => {
                        return Err(ScenarioError::Expected {
                            span: pair[0].0,
                            key: "points".to_string(),
                            expected: "number",
                            found: other.kind(),
                        })
                    }
                };
                let val = match pair[1].1 {
                    Value::Number(v) => v,
                    ref other => {
                        return Err(ScenarioError::Expected {
                            span: pair[1].0,
                            key: "points".to_string(),
                            expected: "number",
                            found: other.kind(),
                        })
                    }
                };
                if !(range.0..=range.1).contains(&val) {
                    return Err(ScenarioError::OutOfRange {
                        span: pair[1].0,
                        key: "points".to_string(),
                        value: val,
                        lo: range.0,
                        hi: range.1,
                    });
                }
                points.push((day, val));
            }
            if points.is_empty() {
                return Err(bad_points(e.value_span, "series needs at least one point"));
            }
            ForcingSeries::from_points(points).ok_or_else(|| {
                bad_points(
                    e.value_span,
                    "series days must be finite and strictly increasing",
                )
            })?
        }
        other => {
            return Err(ScenarioError::Invalid {
                span: kind_entry.value_span,
                msg: format!("unknown forcing kind {other:?} (constant, ramp, pulse, or series)"),
            })
        }
    };
    Ok(series)
}

impl Scenario {
    /// Parse and semantically validate scenario source text.
    pub fn parse(src: &str) -> Result<Scenario, ScenarioError> {
        Scenario::from_doc(&Document::parse(src)?)
    }

    /// Resolve a parsed [`Document`] into a typed scenario.
    pub fn from_doc(doc: &Document) -> Result<Scenario, ScenarioError> {
        let mut sc = Scenario {
            name: String::new(),
            description: String::new(),
            preset: "tiny".to_string(),
            seed: 42,
            days: 1.0,
            ocean: OceanKind::Full,
            obliquity_deg: None,
            co2_factor: None,
            solar_scale: None,
            aerosol_od: None,
            forcings: Forcings::default(),
            sweep: None,
        };
        let mut saw_scenario = false;
        for section in &doc.sections {
            match section.name.as_str() {
                "scenario" => {
                    saw_scenario = true;
                    check_keys(section, &["name", "description", "preset", "seed", "days"])?;
                    sc.name = as_str(require(section, "name")?)?.to_string();
                    if let Some(e) = section.get("description") {
                        sc.description = as_str(e)?.to_string();
                    }
                    if let Some(e) = section.get("preset") {
                        let p = as_str(e)?;
                        if !matches!(p, "tiny" | "century" | "paper") {
                            return Err(ScenarioError::Invalid {
                                span: e.value_span,
                                msg: format!("unknown preset {p:?} (tiny, century, or paper)"),
                            });
                        }
                        sc.preset = p.to_string();
                    }
                    if let Some(e) = section.get("seed") {
                        let n = as_number(e)?;
                        if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
                            return Err(ScenarioError::Invalid {
                                span: e.value_span,
                                msg: "seed must be a non-negative integer".to_string(),
                            });
                        }
                        sc.seed = n as u64;
                    }
                    if let Some(e) = section.get("days") {
                        let d = as_number(e)?;
                        if d <= 0.0 {
                            return Err(ScenarioError::Invalid {
                                span: e.value_span,
                                msg: "days must be positive".to_string(),
                            });
                        }
                        sc.days = d;
                    }
                }
                "model" => {
                    check_keys(
                        section,
                        &[
                            "ocean",
                            "obliquity_deg",
                            "co2_factor",
                            "solar_scale",
                            "aerosol_od",
                        ],
                    )?;
                    if let Some(e) = section.get("ocean") {
                        sc.ocean = match as_str(e)? {
                            "full" => OceanKind::Full,
                            "slab" => OceanKind::Slab,
                            other => {
                                return Err(ScenarioError::Invalid {
                                    span: e.value_span,
                                    msg: format!("unknown ocean {other:?} (full or slab)"),
                                })
                            }
                        };
                    }
                    if let Some(e) = section.get("obliquity_deg") {
                        sc.obliquity_deg = Some(in_range(e, as_number(e)?, OBLIQUITY_RANGE)?);
                    }
                    if let Some(e) = section.get("co2_factor") {
                        sc.co2_factor = Some(in_range(e, as_number(e)?, CO2_RANGE)?);
                    }
                    if let Some(e) = section.get("solar_scale") {
                        sc.solar_scale = Some(in_range(e, as_number(e)?, SOLAR_RANGE)?);
                    }
                    if let Some(e) = section.get("aerosol_od") {
                        sc.aerosol_od = Some(in_range(e, as_number(e)?, AEROSOL_RANGE)?);
                    }
                }
                "forcing.co2" => {
                    sc.forcings.co2 = lower_forcing(section, 1.0, CO2_RANGE)?;
                }
                "forcing.solar" => {
                    sc.forcings.solar = lower_forcing(section, 1.0, SOLAR_RANGE)?;
                }
                "forcing.aerosol" => {
                    sc.forcings.aerosol = lower_forcing(section, 0.0, AEROSOL_RANGE)?;
                }
                "sweep" => {
                    check_keys(
                        section,
                        &["axis", "values", "from", "to", "step", "workers"],
                    )?;
                    let ea = require(section, "axis")?;
                    let axis = as_str(ea)?;
                    let range = match axis {
                        "solar_scale" => SOLAR_RANGE,
                        "co2_factor" => CO2_RANGE,
                        "aerosol_od" => AEROSOL_RANGE,
                        "obliquity_deg" => OBLIQUITY_RANGE,
                        other => {
                            return Err(ScenarioError::Invalid {
                                span: ea.value_span,
                                msg: format!(
                                    "unknown sweep axis {other:?} (solar_scale, co2_factor, \
                                     aerosol_od, or obliquity_deg)"
                                ),
                            })
                        }
                    };
                    let values = if let Some(e) = section.get("values") {
                        let rows = match e.value {
                            Value::Array(ref rows) => rows,
                            ref other => {
                                return Err(ScenarioError::Expected {
                                    span: e.value_span,
                                    key: e.key.clone(),
                                    expected: "array of numbers",
                                    found: other.kind(),
                                })
                            }
                        };
                        let mut vs = Vec::with_capacity(rows.len());
                        for (span, v) in rows {
                            let n = match v {
                                Value::Number(n) => *n,
                                other => {
                                    return Err(ScenarioError::Expected {
                                        span: *span,
                                        key: "values".to_string(),
                                        expected: "number",
                                        found: other.kind(),
                                    })
                                }
                            };
                            if !(range.0..=range.1).contains(&n) {
                                return Err(ScenarioError::OutOfRange {
                                    span: *span,
                                    key: "values".to_string(),
                                    value: n,
                                    lo: range.0,
                                    hi: range.1,
                                });
                            }
                            vs.push(n);
                        }
                        vs
                    } else {
                        let ef = require(section, "from")?;
                        let et = require(section, "to")?;
                        let es = require(section, "step")?;
                        let from = in_range(ef, as_number(ef)?, range)?;
                        let to = in_range(et, as_number(et)?, range)?;
                        let step = as_number(es)?;
                        if !(step > 0.0 && step.is_finite()) || to < from {
                            return Err(ScenarioError::Invalid {
                                span: es.value_span,
                                msg: "sweep needs step > 0 and to >= from".to_string(),
                            });
                        }
                        // Tolerate the usual floating-point shortfall at
                        // the top end so `1360..1370 step 2` includes 1370.
                        let n = ((to - from) / step + 1e-9).floor() as usize;
                        (0..=n).map(|i| from + i as f64 * step).collect()
                    };
                    if values.is_empty() {
                        return Err(ScenarioError::Invalid {
                            span: section.span,
                            msg: "sweep produced no members".to_string(),
                        });
                    }
                    let workers = match section.get("workers") {
                        None => 2,
                        Some(e) => {
                            let w = as_number(e)?;
                            if !(w >= 1.0 && w.fract() == 0.0 && w <= 64.0) {
                                return Err(ScenarioError::Invalid {
                                    span: e.value_span,
                                    msg: "workers must be an integer in [1, 64]".to_string(),
                                });
                            }
                            w as usize
                        }
                    };
                    sc.sweep = Some(Sweep {
                        axis: axis.to_string(),
                        values,
                        workers,
                    });
                }
                _ => {
                    return Err(ScenarioError::UnknownSection {
                        span: section.span,
                        name: section.name.clone(),
                    })
                }
            }
        }
        if !saw_scenario {
            return Err(ScenarioError::MissingKey {
                section: "scenario".to_string(),
                key: "name".to_string(),
            });
        }
        Ok(sc)
    }

    /// Lower to a runnable base configuration: preset, then the slab
    /// ablation, then static overrides, then the forcing series — and
    /// finally the model's own `validate` as the backstop.
    pub fn config(&self) -> Result<FoamConfig, ScenarioError> {
        let mut cfg = match self.preset.as_str() {
            "century" => FoamConfig::century(self.seed),
            "paper" => FoamConfig::paper(4, self.seed),
            _ => FoamConfig::tiny(self.seed),
        };
        if self.ocean == OceanKind::Slab {
            // Slab ablation: collapse the deep ocean to a shallow
            // two-level mixed layer with no stretching. The coupler and
            // grids are untouched — only the water column thins.
            cfg.ocean.nz = 2;
            cfg.ocean.depth = 100.0;
            cfg.ocean.stretch = 1.0;
        }
        if let Some(v) = self.obliquity_deg {
            cfg.atm.physics.obliquity_deg = v;
        }
        if let Some(v) = self.co2_factor {
            cfg.atm.physics.rad.co2_factor = v;
        }
        if let Some(v) = self.solar_scale {
            cfg.atm.physics.rad.solar_scale = v;
        }
        if let Some(v) = self.aerosol_od {
            cfg.atm.physics.rad.aerosol_od = v;
        }
        cfg.forcings = self.forcings.clone();
        cfg.validate()
            .map_err(|e| ScenarioError::Config(e.to_string()))?;
        Ok(cfg)
    }

    /// Lower the `[sweep]` section (if any) to an ensemble: one member
    /// per swept value, all sharing the scenario seed so the sweep
    /// isolates the parameter, not the initial condition.
    pub fn ensemble(&self) -> Result<Option<EnsembleSpec>, ScenarioError> {
        let sweep = match &self.sweep {
            None => return Ok(None),
            Some(s) => s,
        };
        let base = self.config()?;
        let mut spec = EnsembleSpec::seed_sweep(base, self.days, sweep.values.len());
        spec.workers = sweep.workers;
        for (i, m) in spec.members.iter_mut().enumerate() {
            m.seed = self.seed;
            m.overrides = vec![sweep.override_for(i)];
        }
        spec.validate()
            .map_err(|e| ScenarioError::Config(e.to_string()))?;
        Ok(Some(spec))
    }

    /// A content digest over everything that determines simulated bits:
    /// the lowered config digest (preset, seed, statics, forcings) plus
    /// the scenario-level run shape (days, sweep axis and values).
    pub fn content_digest(&self) -> Result<String, ScenarioError> {
        let mut h = CanonicalHasher::new();
        h.field_digest("config", &self.config()?.canonical_digest())
            .field_f64("days", self.days);
        if let Some(sweep) = &self.sweep {
            h.field_str("sweep_axis", &sweep.axis)
                .field_f64s("sweep_values", &sweep.values);
        }
        Ok(h.finish())
    }
}
