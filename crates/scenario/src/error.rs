//! Typed scenario errors, each carrying enough position information to
//! print a compiler-style diagnostic (`line 7, col 12: unknown key
//! "dayz" in [scenario]`).

use crate::parse::Span;

/// Everything that can go wrong between scenario source text and a
/// validated, runnable configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The text does not parse: bad header, missing `=`, unterminated
    /// string/array, unrecognized token.
    Syntax { span: Span, msg: String },
    /// A key appears twice in one section.
    DuplicateKey { span: Span, key: String },
    /// A `[section]` the format does not define.
    UnknownSection { span: Span, name: String },
    /// A key the section does not define (typo protection: `dayz = 30`
    /// must fail loudly, not silently run the default).
    UnknownKey {
        span: Span,
        section: String,
        key: String,
    },
    /// A key holds the wrong shape of value (`days = "many"`).
    Expected {
        span: Span,
        key: String,
        expected: &'static str,
        found: &'static str,
    },
    /// A required key is absent from its section.
    MissingKey { section: String, key: String },
    /// A value parses but lies outside the physically admissible
    /// envelope for its knob.
    OutOfRange {
        span: Span,
        key: String,
        value: f64,
        lo: f64,
        hi: f64,
    },
    /// A value violates a structural rule the range check cannot
    /// express (ramp ends before it starts, series days not
    /// increasing, empty sweep, ...).
    Invalid { span: Span, msg: String },
    /// The lowered [`foam::FoamConfig`] failed the model's own
    /// validation — the backstop behind the scenario-level checks.
    Config(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Syntax { span, msg } => write!(f, "{span}: {msg}"),
            ScenarioError::DuplicateKey { span, key } => {
                write!(f, "{span}: duplicate key {key:?}")
            }
            ScenarioError::UnknownSection { span, name } => {
                write!(f, "{span}: unknown section [{name}]")
            }
            ScenarioError::UnknownKey { span, section, key } => {
                write!(f, "{span}: unknown key {key:?} in [{section}]")
            }
            ScenarioError::Expected {
                span,
                key,
                expected,
                found,
            } => write!(f, "{span}: {key:?} expects a {expected}, found a {found}"),
            ScenarioError::MissingKey { section, key } => {
                write!(f, "[{section}] is missing the required key {key:?}")
            }
            ScenarioError::OutOfRange {
                span,
                key,
                value,
                lo,
                hi,
            } => write!(
                f,
                "{span}: {key:?} = {value} lies outside the admissible range [{lo}, {hi}]"
            ),
            ScenarioError::Invalid { span, msg } => write!(f, "{span}: {msg}"),
            ScenarioError::Config(msg) => write!(f, "lowered config rejected: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}
