//! # foam-scenario — declarative climate experiments
//!
//! The paper's experiments — CO₂ ramps, volcanic aerosol pulses,
//! solar-constant sweeps, paleo orbital configurations, slab-ocean
//! ablations — are *configurations*, not code. This crate gives them a
//! small declarative surface:
//!
//! ```text
//! [scenario]
//! name = "co2-ramp-1pct"
//! preset = tiny
//! seed = 42
//! days = 360
//!
//! [forcing.co2]
//! kind = ramp
//! from = 1.0
//! to = 2.0
//! start_day = 0
//! end_day = 360
//! shape = exponential
//! ```
//!
//! and a pipeline behind it:
//!
//! 1. **Parse** ([`parse::Document`]): a hand-rolled, std-only parser
//!    for the TOML-subset above; every token carries a 1-based
//!    [`Span`] for compiler-style diagnostics.
//! 2. **Validate** ([`Scenario::from_doc`]): unknown sections/keys are
//!    rejected, every value is range-checked against the same
//!    envelopes `FoamConfig::validate` enforces, all as typed
//!    [`ScenarioError`]s pointing at the offending source.
//! 3. **Lower**: ramps and pulses compile to piecewise-linear
//!    [`foam_physics::ForcingSeries`] breakpoints
//!    ([`Scenario::config`]); `[sweep]` sections become
//!    [`foam_ensemble::EnsembleSpec`] members carrying absolute
//!    [`foam_ensemble::ParamOverride`]s ([`Scenario::ensemble`]).
//!
//! The model never interprets scenario text: by the time a run starts,
//! a scenario is just a validated [`foam::FoamConfig`] whose forcings
//! the physics samples once per simulated day — which is what keeps
//! checkpoint/resume bit-identical mid-ramp and lets
//! [`Scenario::content_digest`] give every experiment a stable
//! content-address.

pub mod error;
pub mod parse;
pub mod report;
mod scenario;

pub use error::ScenarioError;
pub use parse::{Document, Span, Value};
pub use scenario::{
    OceanKind, Scenario, Sweep, AEROSOL_RANGE, CO2_RANGE, OBLIQUITY_RANGE, SOLAR_RANGE,
};

#[cfg(test)]
mod tests {
    use super::*;

    const RAMP: &str = "\
[scenario]
name = \"co2-ramp\"
preset = tiny
seed = 7
days = 40

[forcing.co2]
kind = ramp
from = 1.0
to = 2.0
start_day = 0
end_day = 40
";

    #[test]
    fn ramp_scenario_lowers_to_breakpoints_and_validated_config() {
        let sc = Scenario::parse(RAMP).unwrap();
        assert_eq!(sc.name, "co2-ramp");
        assert_eq!(sc.seed, 7);
        let pts = sc.forcings.co2.points();
        assert_eq!(pts, &[(0.0, 1.0), (40.0, 2.0)]);
        let cfg = sc.config().unwrap();
        assert_eq!(cfg.atm.seed, 7);
        assert_eq!(cfg.forcings.co2.value_at(20.0), Some(1.5));
        assert!(sc.ensemble().unwrap().is_none());
    }

    #[test]
    fn pulse_returns_to_identity_exactly() {
        let src = "\
[scenario]
name = \"pinatubo\"

[forcing.aerosol]
kind = pulse
peak = 0.15
onset_day = 10
rise_days = 5
decay_days = 30
";
        let sc = Scenario::parse(src).unwrap();
        let pts = sc.forcings.aerosol.points();
        assert_eq!(pts.first().unwrap(), &(10.0, 0.0));
        assert_eq!(pts[1], (15.0, 0.15));
        let last = pts.last().unwrap();
        assert_eq!(last.1, 0.0, "pulse must pin the identity at the end");
        assert_eq!(last.0, 15.0 + 180.0);
        // Long after the pulse, the channel is exactly neutral again.
        assert_eq!(sc.forcings.aerosol.value_at(10_000.0), Some(0.0));
    }

    #[test]
    fn sweep_lowers_to_ensemble_members_with_overrides() {
        let src = "\
[scenario]
name = \"solar-sweep\"
days = 2

[sweep]
axis = solar_scale
from = 0.99
to = 1.01
step = 0.01
workers = 3
";
        let sc = Scenario::parse(src).unwrap();
        let spec = sc.ensemble().unwrap().expect("sweep present");
        assert_eq!(spec.members.len(), 3);
        assert_eq!(spec.workers, 3);
        // Same seed everywhere: the sweep isolates the parameter.
        assert!(spec.members.iter().all(|m| m.seed == sc.seed));
        let c2 = spec.member_config(&spec.members[2]);
        assert_eq!(c2.atm.physics.rad.solar_scale, 0.99 + 2.0 * 0.01);
    }

    #[test]
    fn errors_are_typed_and_carry_spans() {
        // Unknown key in [scenario].
        let e = Scenario::parse("[scenario]\nname = x\ndayz = 30\n").unwrap_err();
        assert!(
            matches!(e, ScenarioError::UnknownKey { ref key, .. } if key == "dayz"),
            "{e}"
        );
        assert!(e.to_string().contains("line 3"), "{e}");

        // Out-of-range forcing value, span on the value.
        let e = Scenario::parse(
            "[scenario]\nname = x\n[forcing.solar]\nkind = constant\nvalue = 2.0\n",
        )
        .unwrap_err();
        match e {
            ScenarioError::OutOfRange { span, value, .. } => {
                assert_eq!(value, 2.0);
                assert_eq!(span.line, 5);
            }
            other => panic!("expected OutOfRange, got {other}"),
        }

        // Unknown section; missing [scenario]; missing required key.
        assert!(matches!(
            Scenario::parse("[scenario]\nname = x\n[volcano]\n").unwrap_err(),
            ScenarioError::UnknownSection { .. }
        ));
        assert!(matches!(
            Scenario::parse("[model]\nocean = slab\n").unwrap_err(),
            ScenarioError::MissingKey { .. }
        ));
        assert!(matches!(
            Scenario::parse("[scenario]\nname = x\n[forcing.co2]\nkind = ramp\n").unwrap_err(),
            ScenarioError::MissingKey { .. }
        ));

        // Structural rules: ramp must move forward in time.
        let e = Scenario::parse(
            "[scenario]\nname = x\n[forcing.co2]\nkind = ramp\nfrom = 1\nto = 2\n\
             start_day = 10\nend_day = 5\n",
        )
        .unwrap_err();
        assert!(matches!(e, ScenarioError::Invalid { .. }), "{e}");
    }

    #[test]
    fn slab_ablation_thins_the_ocean() {
        let sc = Scenario::parse("[scenario]\nname = x\n[model]\nocean = slab\n").unwrap();
        let cfg = sc.config().unwrap();
        assert_eq!(cfg.ocean.nz, 2);
        assert_eq!(cfg.ocean.depth, 100.0);
        let full = Scenario::parse("[scenario]\nname = x\n")
            .unwrap()
            .config()
            .unwrap();
        assert!(full.ocean.nz > 2);
    }

    #[test]
    fn content_digest_tracks_content_not_presentation() {
        let a = Scenario::parse(RAMP).unwrap();
        // Same content, different comments/whitespace: same digest.
        let b = Scenario::parse(&format!("# a comment\n\n{RAMP}")).unwrap();
        assert_eq!(a.content_digest().unwrap(), b.content_digest().unwrap());
        // Different forcing: different digest.
        let c = Scenario::parse(&RAMP.replace("to = 2.0", "to = 3.0")).unwrap();
        assert_ne!(a.content_digest().unwrap(), c.content_digest().unwrap());
        // Different days: different digest.
        let d = Scenario::parse(&RAMP.replace("days = 40", "days = 41")).unwrap();
        assert_ne!(a.content_digest().unwrap(), d.content_digest().unwrap());
    }
}
