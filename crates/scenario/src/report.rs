//! Deterministic textual reports for scenario runs.
//!
//! Everything printed here is a pure function of the simulated bits —
//! no wall-clock, no hostnames — so the golden-regression tests can
//! compare reports byte-for-byte across runs and machines. Floats are
//! rendered with 17 significant digits (round-trip exact for f64),
//! matching the repo's other golden formats.

use foam::CoupledOutput;
use foam_ensemble::EnsembleOutput;

use crate::Scenario;

fn stats_lines(out: &mut String, label: &str, series: &[f64]) {
    use std::fmt::Write;
    let n = series.len();
    writeln!(out, "{label} intervals: {n}").unwrap();
    if n == 0 {
        return;
    }
    let first = series[0];
    let last = series[n - 1];
    let (mut lo, mut hi, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
    for &v in series {
        lo = lo.min(v);
        hi = hi.max(v);
        sum += v;
    }
    let mean = sum / n as f64;
    let var = series.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    writeln!(out, "{label} first: {first:.17e}").unwrap();
    writeln!(out, "{label} final: {last:.17e}").unwrap();
    writeln!(out, "{label} min: {lo:.17e}").unwrap();
    writeln!(out, "{label} max: {hi:.17e}").unwrap();
    writeln!(out, "{label} std: {:.17e}", var.sqrt()).unwrap();
}

/// The report for a single (non-sweep) scenario run: identity, forcing
/// shape, and the variability of the area-mean SST trace — the
/// scenario-scale analogue of the paper's Figure-4 diagnostics.
pub fn run_report(sc: &Scenario, out: &CoupledOutput) -> String {
    let mut s = String::new();
    use std::fmt::Write;
    writeln!(
        s,
        "scenario: {} (preset {}, seed {}, {} days)",
        sc.name, sc.preset, sc.seed, sc.days
    )
    .unwrap();
    writeln!(
        s,
        "forcing breakpoints: co2={} solar={} aerosol={}",
        sc.forcings.co2.points().len(),
        sc.forcings.solar.points().len(),
        sc.forcings.aerosol.points().len()
    )
    .unwrap();
    stats_lines(&mut s, "mean_sst", &out.mean_sst_series);
    writeln!(s, "ice_fraction: {:.17e}", out.ice_fraction).unwrap();
    s
}

/// The report for a sweep scenario: one line per member, keyed by the
/// swept value, plus the spread across the sweep axis.
pub fn sweep_report(sc: &Scenario, out: &EnsembleOutput) -> String {
    let mut s = String::new();
    use std::fmt::Write;
    let sweep = sc.sweep.as_ref().expect("sweep_report needs a sweep");
    writeln!(
        s,
        "scenario: {} (preset {}, seed {}, {} days, sweep {})",
        sc.name, sc.preset, sc.seed, sc.days, sweep.axis
    )
    .unwrap();
    let mut finals = Vec::new();
    for (i, rec) in out.members.iter().enumerate() {
        match rec.output() {
            Some(m) => {
                let f = m.mean_sst_series.last().copied().unwrap_or(f64::NAN);
                finals.push(f);
                writeln!(
                    s,
                    "member {i}: {}={:.17e} final_mean_sst={f:.17e}",
                    sweep.axis, sweep.values[i]
                )
                .unwrap();
            }
            None => writeln!(
                s,
                "member {i}: {}={:.17e} FAILED",
                sweep.axis, sweep.values[i]
            )
            .unwrap(),
        }
    }
    stats_lines(&mut s, "sweep final_mean_sst", &finals);
    s
}
