//! CRC-64/XZ (also known as CRC-64/GO-ECMA): the reflected ECMA-182
//! polynomial with all-ones init and final xor — the variant used by the
//! `xz` container, chosen here for its well-known check value so the
//! implementation is verifiable against published vectors.

/// Reflected form of the ECMA-182 polynomial 0x42F0E1EBA9EA3693.
const POLY_REFLECTED: u64 = 0xC96C_5795_D787_0F42;

/// 256-entry lookup table, built at compile time.
const TABLE: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY_REFLECTED
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-64/XZ of `data`.
pub fn crc64(data: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in data {
        crc = TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_check_value() {
        // The canonical CRC catalogue check: crc("123456789").
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 1024];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 37 % 251) as u8;
        }
        let reference = crc64(&data);
        for byte in [0usize, 500, 1023] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc64(&flipped), reference, "missed flip at {byte}:{bit}");
            }
        }
    }
}
