//! `foam-ckpt` — the checkpoint/restart layer of FOAM-RS.
//!
//! Century-to-millennium coupled integrations are, in practice, chains
//! of restarted runs: batch jobs end, nodes are preempted, exchanges
//! time out. This crate provides the durable-snapshot discipline that
//! long-running HPC codes rely on (CCSM-lineage restart files, POP's
//! pop-file restarts), adapted to FOAM-RS:
//!
//! * a **binary snapshot format** ([`mod@format`]) — named sections behind a
//!   magic/version header, each independently CRC64-checksummed, so a
//!   torn or bit-rotted file is *diagnosed* ([`CkptError`]) rather than
//!   silently resumed from;
//! * a **bit-exact codec** ([`codec`]) — `f64` travels as its IEEE-754
//!   bit pattern, never through text, so restart + resume reproduces an
//!   uninterrupted run to the last bit;
//! * **atomic writes** — snapshots are assembled in a scratch location
//!   and `rename`d into place, so a crash mid-checkpoint can never
//!   destroy the previous good checkpoint;
//! * a **checkpoint store** ([`store`]) — per-rank shard files plus a
//!   manifest under one directory per checkpoint, retention of the last
//!   `keep` snapshots, and enumeration newest-first so a reader can fall
//!   back across corrupt checkpoints;
//! * **deterministic fault injection** ([`faults`]) — a [`FaultyStore`]
//!   wrapper produces torn writes, CRC corruption, and ENOSPC-style
//!   write failures on a schedule, so every recovery path above this
//!   crate can be exercised reproducibly.
//!
//! The crate is deliberately at the bottom of the dependency stack: it
//! knows nothing about grids or models. Each component crate implements
//! [`Codec`] for its own state types; the `foam` core assembles them
//! into shards.
//!
//! # Example
//!
//! A snapshot round-trips any [`Codec`] value bit-exactly, and a flipped
//! byte is caught by the section checksum instead of decoding to
//! nonsense:
//!
//! ```
//! use foam_ckpt::{CkptError, Snapshot, SnapshotWriter};
//!
//! let mut w = SnapshotWriter::new();
//! w.put("ocean/temps", &vec![21.5f64, -1.8, 4.0625]);
//! w.put("meta/interval", &7usize);
//! let bytes = w.to_bytes();
//!
//! let snap = Snapshot::from_bytes(&bytes).unwrap();
//! assert_eq!(snap.get::<Vec<f64>>("ocean/temps").unwrap(), vec![21.5, -1.8, 4.0625]);
//! assert_eq!(snap.get::<usize>("meta/interval").unwrap(), 7);
//! assert!(matches!(
//!     snap.get::<usize>("meta/missing"),
//!     Err(CkptError::MissingSection(_))
//! ));
//!
//! let mut torn = bytes.clone();
//! let last = torn.len() - 1;
//! torn[last] ^= 0xFF; // bit-rot in the final section's payload
//! assert!(matches!(
//!     Snapshot::from_bytes(&torn),
//!     Err(CkptError::CrcMismatch { .. })
//! ));
//! ```

pub mod codec;
pub mod crc64;
pub mod faults;
pub mod format;
pub mod store;

pub use codec::{ByteReader, Codec};
pub use crc64::crc64;
pub use faults::{FaultyStore, StoreFault, StoreFaultKind, StoreFaultPlan};
pub use format::{Snapshot, SnapshotWriter, CKPT_MAGIC, CKPT_VERSION};
pub use store::{CheckpointStore, PendingCheckpoint, MANIFEST_FILE};

/// Typed failure of checkpoint I/O, validation, or decoding. Every
/// corruption mode a restart can meet has a distinct variant, so the
/// driver can report *why* a snapshot was rejected and fall back to an
/// older one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// Underlying filesystem failure (open/create/rename/…).
    Io { op: &'static str, detail: String },
    /// The file does not start with the `FOAMCKPT` magic.
    BadMagic,
    /// The format version is one this build cannot read.
    BadVersion { found: u32, expected: u32 },
    /// The file ended mid-structure (torn write, truncation).
    Truncated { what: &'static str },
    /// A section's payload does not match its stored CRC64.
    CrcMismatch { section: String },
    /// A section the reader needs is absent.
    MissingSection(String),
    /// Structurally valid bytes that decode to nonsense (length
    /// mismatches, invalid enum discriminants, …).
    Corrupt(String),
    /// The snapshot was written by an incompatible configuration
    /// (different grid dimensions, timesteps, …).
    ConfigMismatch(String),
    /// No (valid) checkpoint exists to resume from.
    NoCheckpoint,
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io { op, detail } => {
                write!(f, "checkpoint I/O failed during {op}: {detail}")
            }
            CkptError::BadMagic => write!(f, "not a FOAM checkpoint (bad magic)"),
            CkptError::BadVersion { found, expected } => {
                write!(
                    f,
                    "checkpoint format version {found} (this build reads {expected})"
                )
            }
            CkptError::Truncated { what } => write!(f, "checkpoint truncated while reading {what}"),
            CkptError::CrcMismatch { section } => {
                write!(
                    f,
                    "CRC64 mismatch in section '{section}' (corrupt checkpoint)"
                )
            }
            CkptError::MissingSection(name) => write!(f, "checkpoint misses section '{name}'"),
            CkptError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            CkptError::ConfigMismatch(why) => {
                write!(f, "checkpoint incompatible with this configuration: {why}")
            }
            CkptError::NoCheckpoint => write!(f, "no valid checkpoint to resume from"),
        }
    }
}

impl std::error::Error for CkptError {}

impl CkptError {
    /// Wrap an `std::io::Error` with the operation that failed.
    pub fn io(op: &'static str, e: std::io::Error) -> Self {
        CkptError::Io {
            op,
            detail: e.to_string(),
        }
    }
}
