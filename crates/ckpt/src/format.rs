//! The on-disk snapshot format.
//!
//! A snapshot file is a header followed by named sections:
//!
//! ```text
//! +--------------------------------------------------------------+
//! | magic  b"FOAMCKPT"                                  8 bytes  |
//! | format version                                  u32 LE       |
//! | section count                                   u64 LE       |
//! +--------------------------------------------------------------+
//! | per section:                                                 |
//! |   name length   u16 LE   name bytes (UTF-8)                  |
//! |   payload length         u64 LE                              |
//! |   payload CRC-64/XZ      u64 LE                              |
//! |   payload bytes                                              |
//! +--------------------------------------------------------------+
//! ```
//!
//! Every section carries its own CRC so corruption is localized to a
//! named section in the error report. [`Snapshot::from_bytes`] verifies
//! all checksums eagerly: a snapshot that opens is a snapshot whose
//! bytes are intact. Files are written via tmp + `rename` so readers
//! never observe a half-written snapshot under the final name.

use std::io::Write;
use std::path::Path;

use crate::codec::{ByteReader, Codec};
use crate::crc64::crc64;
use crate::CkptError;

/// First eight bytes of every snapshot file.
pub const CKPT_MAGIC: [u8; 8] = *b"FOAMCKPT";

/// Format version this build writes and reads.
pub const CKPT_VERSION: u32 = 1;

/// Builder for a snapshot file: collect named sections, then persist
/// atomically.
#[derive(Default)]
pub struct SnapshotWriter {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode `value` as the section `name`. Section names must be
    /// unique; re-adding a name replaces the earlier payload.
    pub fn put<T: Codec>(&mut self, name: &str, value: &T) {
        let payload = value.to_bytes();
        if let Some(slot) = self.sections.iter_mut().find(|(n, _)| n == name) {
            slot.1 = payload;
        } else {
            self.sections.push((name.to_string(), payload));
        }
    }

    /// Serialize the full snapshot into one buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&CKPT_MAGIC);
        out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u64).to_le_bytes());
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc64(payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }

    /// Write to `path` atomically: the bytes land in `<path>.part`
    /// first, are flushed to disk, then renamed over the final name.
    /// A crash at any point leaves either no file or a complete one.
    pub fn write_atomic(&self, path: &Path) -> Result<(), CkptError> {
        let tmp = path.with_extension("part");
        let mut f = std::fs::File::create(&tmp).map_err(|e| CkptError::io("create", e))?;
        f.write_all(&self.to_bytes())
            .map_err(|e| CkptError::io("write", e))?;
        f.sync_all().map_err(|e| CkptError::io("sync", e))?;
        drop(f);
        std::fs::rename(&tmp, path).map_err(|e| CkptError::io("rename", e))
    }
}

/// A parsed, checksum-verified snapshot.
#[derive(Debug)]
pub struct Snapshot {
    sections: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// Read and verify a snapshot file.
    pub fn open(path: &Path) -> Result<Self, CkptError> {
        let bytes = std::fs::read(path).map_err(|e| CkptError::io("read", e))?;
        Self::from_bytes(&bytes)
    }

    /// Parse a snapshot from memory, verifying the magic, the version,
    /// and every section's CRC before returning.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take(8).map_err(|_| CkptError::Truncated {
            what: "header magic",
        })?;
        if magic != CKPT_MAGIC {
            return Err(CkptError::BadMagic);
        }
        let version = r.u32().map_err(|_| CkptError::Truncated {
            what: "header version",
        })?;
        if version != CKPT_VERSION {
            return Err(CkptError::BadVersion {
                found: version,
                expected: CKPT_VERSION,
            });
        }
        let n_sections = r.u64().map_err(|_| CkptError::Truncated {
            what: "section count",
        })?;

        let mut sections = Vec::new();
        for _ in 0..n_sections {
            let name_len = {
                let b = r.take(2).map_err(|_| CkptError::Truncated {
                    what: "section name length",
                })?;
                u16::from_le_bytes(b.try_into().unwrap()) as usize
            };
            let name_bytes = r.take(name_len).map_err(|_| CkptError::Truncated {
                what: "section name",
            })?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| CkptError::Corrupt("section name is not UTF-8".into()))?
                .to_string();
            let payload_len = r.u64().map_err(|_| CkptError::Truncated {
                what: "section length",
            })?;
            let payload_len = usize::try_from(payload_len)
                .map_err(|_| CkptError::Corrupt("section length overflows usize".into()))?;
            let stored_crc = r.u64().map_err(|_| CkptError::Truncated {
                what: "section checksum",
            })?;
            let payload = r.take(payload_len).map_err(|_| CkptError::Truncated {
                what: "section payload",
            })?;
            if crc64(payload) != stored_crc {
                return Err(CkptError::CrcMismatch { section: name });
            }
            sections.push((name, payload.to_vec()));
        }
        if !r.is_empty() {
            return Err(CkptError::Corrupt(format!(
                "{} trailing bytes after final section",
                r.remaining()
            )));
        }
        Ok(Snapshot { sections })
    }

    /// Names of all sections, in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// True if the section exists.
    pub fn has(&self, name: &str) -> bool {
        self.sections.iter().any(|(n, _)| n == name)
    }

    /// Decode the section `name` as a `T`.
    pub fn get<T: Codec>(&self, name: &str) -> Result<T, CkptError> {
        let (_, payload) = self
            .sections
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| CkptError::MissingSection(name.to_string()))?;
        T::from_bytes(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotWriter {
        let mut w = SnapshotWriter::new();
        w.put("meta/interval", &42u64);
        w.put("ocean/t", &vec![1.5f64, -2.25, 0.0]);
        w.put("flags", &(true, 7usize));
        w
    }

    #[test]
    fn round_trip_via_bytes() {
        let snap = Snapshot::from_bytes(&sample().to_bytes()).unwrap();
        assert_eq!(snap.get::<u64>("meta/interval").unwrap(), 42);
        assert_eq!(
            snap.get::<Vec<f64>>("ocean/t").unwrap(),
            vec![1.5, -2.25, 0.0]
        );
        assert_eq!(snap.get::<(bool, usize)>("flags").unwrap(), (true, 7));
        assert!(snap.has("flags"));
        assert!(!snap.has("missing"));
    }

    #[test]
    fn put_replaces_existing_section() {
        let mut w = sample();
        w.put("meta/interval", &99u64);
        let snap = Snapshot::from_bytes(&w.to_bytes()).unwrap();
        assert_eq!(snap.get::<u64>("meta/interval").unwrap(), 99);
        assert_eq!(snap.section_names().count(), 3);
    }

    #[test]
    fn missing_section_is_typed() {
        let snap = Snapshot::from_bytes(&sample().to_bytes()).unwrap();
        assert_eq!(
            snap.get::<u64>("nope").unwrap_err(),
            CkptError::MissingSection("nope".into())
        );
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(
            Snapshot::from_bytes(&bytes).unwrap_err(),
            CkptError::BadMagic
        );
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut bytes = sample().to_bytes();
        bytes[8] = 0xFF;
        let err = Snapshot::from_bytes(&bytes).unwrap_err();
        assert!(matches!(
            err,
            CkptError::BadVersion {
                expected: CKPT_VERSION,
                ..
            }
        ));
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = Snapshot::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CkptError::Truncated { .. }),
                "cut at {cut}: got {err}"
            );
        }
    }

    #[test]
    fn flipped_payload_byte_is_a_crc_mismatch() {
        let full = sample().to_bytes();
        // Flip the final byte: payload of the last section.
        let mut bytes = full.clone();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let err = Snapshot::from_bytes(&bytes).unwrap_err();
        assert_eq!(
            err,
            CkptError::CrcMismatch {
                section: "flags".into()
            }
        );
    }

    #[test]
    fn atomic_write_then_open() {
        let dir = std::env::temp_dir().join(format!(
            "foam-ckpt-fmt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.foam");
        sample().write_atomic(&path).unwrap();
        // No .part debris left behind.
        assert!(!path.with_extension("part").exists());
        let snap = Snapshot::open(&path).unwrap();
        assert_eq!(snap.get::<u64>("meta/interval").unwrap(), 42);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
