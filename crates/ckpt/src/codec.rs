//! Bit-exact binary encoding of checkpoint payloads.
//!
//! The contract is *round-trip identity at the bit level*: `f64` is
//! stored as its IEEE-754 bit pattern (NaN payloads and signed zeros
//! survive), integers as fixed-width little-endian, so
//! serialize→deserialize is the identity function — the property the
//! restart-determinism guarantee rests on, and what the proptest suite
//! checks for every state type.
//!
//! Decoding is defensive: every read is bounds-checked ([`ByteReader`]),
//! lengths are validated before allocation, and malformed input comes
//! back as a typed [`CkptError`] instead of a panic or an OOM.

use crate::CkptError;

/// Bounds-checked cursor over a decode buffer.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated {
                what: "payload bytes",
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, CkptError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, CkptError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// A `u64` that must fit this platform's `usize`.
    pub fn len(&mut self) -> Result<usize, CkptError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CkptError::Corrupt(format!("length {v} overflows usize")))
    }

    /// A collection length that must be payable from the remaining
    /// bytes, assuming each element costs at least `min_elem_bytes`.
    /// Rejects absurd lengths before any allocation happens.
    pub fn bounded_len(&mut self, min_elem_bytes: usize) -> Result<usize, CkptError> {
        let n = self.len()?;
        let need = n.saturating_mul(min_elem_bytes.max(1));
        if need > self.remaining() {
            return Err(CkptError::Corrupt(format!(
                "declared length {n} needs {need} bytes but only {} remain",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

/// A type that can be written to and read back from a checkpoint,
/// bit-identically.
pub trait Codec: Sized {
    fn encode(&self, buf: &mut Vec<u8>);
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Decode from a full buffer, requiring every byte to be consumed.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut r = ByteReader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(CkptError::Corrupt(format!(
                "{} trailing bytes after value",
                r.remaining()
            )));
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

impl Codec for u8 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        r.u8()
    }
}

impl Codec for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        r.u32()
    }
}

impl Codec for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        r.u64()
    }
}

impl Codec for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        r.len()
    }
}

impl Codec for i64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(r.u64()? as i64)
    }
}

impl Codec for f64 {
    /// Stored as the IEEE-754 bit pattern: the round trip is the
    /// identity for every representable value, NaNs included.
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(f64::from_bits(r.u64()?))
    }
}

impl Codec for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CkptError::Corrupt(format!("invalid bool byte {other}"))),
        }
    }
}

impl Codec for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.len().encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        let n = r.bounded_len(1)?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CkptError::Corrupt("string is not UTF-8".into()))
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.len().encode(buf);
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        let n = r.bounded_len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(CkptError::Corrupt(format!("invalid Option tag {other}"))),
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<const N: usize> Codec for [f64; N] {
    fn encode(&self, buf: &mut Vec<u8>) {
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        let mut out = [0.0; N];
        for slot in out.iter_mut() {
            *slot = f64::decode(r)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let got = T::from_bytes(&v.to_bytes()).unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(-42i64);
        round_trip(true);
        round_trip(false);
        round_trip(String::from("snapshot §8 ✓"));
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for bits in [
            0u64,
            0x8000_0000_0000_0000, // -0.0
            f64::NAN.to_bits(),
            0x7FF0_0000_0000_0001, // signalling-ish NaN payload
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
            1.0f64.to_bits(),
            f64::MIN_POSITIVE.to_bits(),
            5e-324f64.to_bits(), // subnormal
        ] {
            let v = f64::from_bits(bits);
            let got = f64::from_bytes(&v.to_bytes()).unwrap();
            assert_eq!(got.to_bits(), bits);
        }
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1.0f64, -2.5, 3.25]);
        round_trip(Vec::<u64>::new());
        round_trip(Some(7usize));
        round_trip(Option::<u64>::None);
        round_trip((3usize, -1.5f64));
        round_trip((1u8, 2u32, vec![3.0f64]));
        round_trip([1.0f64, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let bytes = 3.25f64.to_bytes();
        let err = f64::from_bytes(&bytes[..5]).unwrap_err();
        assert!(matches!(err, CkptError::Truncated { .. }));
    }

    #[test]
    fn absurd_vec_length_is_rejected_before_allocation() {
        // Claims 2^60 elements with an 8-byte body.
        let mut bytes = (1u64 << 60).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 8]);
        let err = Vec::<f64>::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, CkptError::Corrupt(_)), "{err}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = 1u64.to_bytes();
        bytes.push(0);
        let err = u64::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, CkptError::Corrupt(_)));
    }

    #[test]
    fn invalid_discriminants_are_typed_errors() {
        assert!(matches!(
            bool::from_bytes(&[2]).unwrap_err(),
            CkptError::Corrupt(_)
        ));
        assert!(matches!(
            Option::<u8>::from_bytes(&[9]).unwrap_err(),
            CkptError::Corrupt(_)
        ));
    }
}
