//! A directory of checkpoints with atomic commit and retention.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/
//!   ckpt-0000000004/            committed checkpoint (coupling interval 4)
//!     MANIFEST.foam
//!     rank-0000.foam
//!     rank-0001.foam
//!   ckpt-0000000008.tmp/        in-flight checkpoint (never resumed from)
//! ```
//!
//! Each checkpoint is one directory named by the coupling interval it
//! captures. Ranks write their shards into a `.tmp` directory; once the
//! manifest is in place the directory is `rename`d to its final name —
//! the commit point. Readers only ever look at committed directories,
//! so a crash mid-checkpoint leaves at worst `.tmp` debris, which the
//! next retention pass sweeps up.

use std::path::{Path, PathBuf};

use crate::CkptError;

/// File name of the per-checkpoint manifest.
pub const MANIFEST_FILE: &str = "MANIFEST.foam";

const PREFIX: &str = "ckpt-";
const TMP_SUFFIX: &str = ".tmp";

/// Handle to a directory holding numbered checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    root: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) the store rooted at `root`.
    pub fn open(root: &Path) -> Result<Self, CkptError> {
        std::fs::create_dir_all(root).map_err(|e| CkptError::io("create store dir", e))?;
        Ok(CheckpointStore {
            root: root.to_path_buf(),
        })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    fn dir_name(interval: u64) -> String {
        format!("{PREFIX}{interval:010}")
    }

    /// Final (committed) directory for `interval`.
    pub fn committed_dir(&self, interval: u64) -> PathBuf {
        self.root.join(Self::dir_name(interval))
    }

    /// Path of a rank's shard inside a checkpoint directory.
    pub fn shard_path(dir: &Path, rank: usize) -> PathBuf {
        dir.join(format!("rank-{rank:04}.foam"))
    }

    /// Path of the manifest inside a checkpoint directory.
    pub fn manifest_path(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// Directory of ensemble member `member`'s own checkpoint store
    /// under a shared ensemble root: `<root>/member-0007`. Keeping one
    /// store per member means retention, staging debris, and restarts
    /// of concurrent members never interfere with each other.
    pub fn member_root(root: &Path, member: usize) -> PathBuf {
        root.join(format!("member-{member:04}"))
    }

    /// Open (creating if needed) member `member`'s store under the
    /// shared ensemble root `root`.
    pub fn open_member(root: &Path, member: usize) -> Result<Self, CkptError> {
        Self::open(&Self::member_root(root, member))
    }

    /// Directory of job `job`'s own checkpoint store under a shared
    /// server root: `<root>/job-<id>`. Job ids are caller-chosen
    /// (content digests, in practice); only `[A-Za-z0-9._-]` survive,
    /// so an id can never escape the root or collide by case tricks.
    pub fn job_root(root: &Path, job: &str) -> PathBuf {
        let safe: String = job
            .chars()
            .filter(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
            .collect();
        root.join(format!("job-{safe}"))
    }

    /// Open (creating if needed) job `job`'s store under the shared
    /// root `root`.
    pub fn open_job(root: &Path, job: &str) -> Result<Self, CkptError> {
        Self::open(&Self::job_root(root, job))
    }

    /// Enumerate the per-member (`member-NNNN`) and per-job
    /// (`job-<id>`) store roots that already exist under `root`, sorted
    /// by name. This is what lets a long-lived service reopen a shared
    /// root and *see* the jobs a previous process left behind —
    /// historically only ensembles created member roots and nothing
    /// ever listed them again. A missing `root` is an empty listing,
    /// not an error (the service simply has no history yet).
    pub fn roots(root: &Path) -> Result<Vec<(String, PathBuf)>, CkptError> {
        let entries = match std::fs::read_dir(root) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(CkptError::io("list store roots", e)),
        };
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| CkptError::io("list store roots", e))?;
            if !entry.path().is_dir() {
                continue;
            }
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("member-") || name.starts_with("job-") {
                out.push((name.to_string(), entry.path()));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Retention-driven garbage collection of store roots under `root`:
    /// every `member-*`/`job-*` root for which `keep` returns `false`
    /// is deleted (snapshots, staging debris and all). Returns the
    /// names of the roots removed, sorted. The caller decides the
    /// policy — a server keeps roots of jobs still queued or running
    /// and sweeps the rest once their results are safely in the cache.
    pub fn sweep_roots(root: &Path, keep: impl Fn(&str) -> bool) -> Result<Vec<String>, CkptError> {
        let mut removed = Vec::new();
        for (name, path) in Self::roots(root)? {
            if !keep(&name) {
                std::fs::remove_dir_all(&path).map_err(|e| CkptError::io("sweep store root", e))?;
                removed.push(name);
            }
        }
        Ok(removed)
    }

    /// Start a new checkpoint for `interval`: creates a fresh `.tmp`
    /// staging directory for ranks to write shards into. Any stale
    /// staging directory from an earlier attempt is discarded.
    pub fn begin(&self, interval: u64) -> Result<PendingCheckpoint, CkptError> {
        let staging = self
            .root
            .join(format!("{}{}", Self::dir_name(interval), TMP_SUFFIX));
        if staging.exists() {
            std::fs::remove_dir_all(&staging).map_err(|e| CkptError::io("clear staging", e))?;
        }
        std::fs::create_dir_all(&staging).map_err(|e| CkptError::io("create staging", e))?;
        Ok(PendingCheckpoint {
            staging,
            committed: self.committed_dir(interval),
            fault: None,
        })
    }

    /// Committed checkpoints as `(interval, dir)`, newest first.
    pub fn candidates(&self) -> Result<Vec<(u64, PathBuf)>, CkptError> {
        let entries =
            std::fs::read_dir(&self.root).map_err(|e| CkptError::io("list store dir", e))?;
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| CkptError::io("list store dir", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(num) = name.strip_prefix(PREFIX) else {
                continue;
            };
            if num.ends_with(TMP_SUFFIX) {
                continue;
            }
            let Ok(interval) = num.parse::<u64>() else {
                continue;
            };
            out.push((interval, entry.path()));
        }
        out.sort_by_key(|&(interval, _)| std::cmp::Reverse(interval));
        Ok(out)
    }

    /// Newest committed checkpoint, if any.
    pub fn latest(&self) -> Result<Option<(u64, PathBuf)>, CkptError> {
        Ok(self.candidates()?.into_iter().next())
    }

    /// Keep the newest `keep` committed checkpoints; delete the rest,
    /// along with any `.tmp` staging debris from interrupted attempts.
    pub fn retain(&self, keep: usize) -> Result<(), CkptError> {
        for (_, dir) in self.candidates()?.into_iter().skip(keep.max(1)) {
            std::fs::remove_dir_all(&dir).map_err(|e| CkptError::io("remove old checkpoint", e))?;
        }
        let entries =
            std::fs::read_dir(&self.root).map_err(|e| CkptError::io("list store dir", e))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(PREFIX) && name.ends_with(TMP_SUFFIX) {
                // Staging debris from a crashed attempt; a live attempt
                // holds its own PendingCheckpoint and recreates freely.
                let _ = std::fs::remove_dir_all(entry.path());
            }
        }
        Ok(())
    }
}

/// An in-flight checkpoint: a staging directory that becomes visible to
/// readers only on [`commit`](PendingCheckpoint::commit).
#[derive(Debug)]
pub struct PendingCheckpoint {
    staging: PathBuf,
    committed: PathBuf,
    /// Injected sabotage applied just before commit (see
    /// [`crate::faults::FaultyStore`]).
    fault: Option<crate::faults::StoreFaultKind>,
}

impl PendingCheckpoint {
    /// Directory ranks should write their shards into.
    pub fn staging_dir(&self) -> &Path {
        &self.staging
    }

    /// Arm an injected storage fault to fire at commit time.
    pub(crate) fn arm(&mut self, kind: crate::faults::StoreFaultKind) {
        self.fault = Some(kind);
    }

    /// Atomically publish the checkpoint: rename staging → committed.
    /// Call only after every shard and the manifest are in place.
    pub fn commit(self) -> Result<PathBuf, CkptError> {
        if let Some(kind) = self.fault {
            // Sabotage the staged bytes, then publish them anyway: the
            // injected failure modes are exactly the ones atomic rename
            // cannot protect against (the *contents* are bad).
            crate::faults::apply(&self.staging, kind)?;
        }
        if self.committed.exists() {
            std::fs::remove_dir_all(&self.committed)
                .map_err(|e| CkptError::io("replace checkpoint", e))?;
        }
        std::fs::rename(&self.staging, &self.committed)
            .map_err(|e| CkptError::io("commit checkpoint", e))?;
        Ok(self.committed)
    }

    /// Discard the staging directory without publishing.
    pub fn abort(self) {
        let _ = std::fs::remove_dir_all(&self.staging);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "foam-ckpt-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn touch(path: &Path) {
        std::fs::write(path, b"x").unwrap();
    }

    fn commit_one(store: &CheckpointStore, interval: u64) -> PathBuf {
        let pending = store.begin(interval).unwrap();
        touch(&CheckpointStore::shard_path(pending.staging_dir(), 0));
        touch(&CheckpointStore::manifest_path(pending.staging_dir()));
        pending.commit().unwrap()
    }

    #[test]
    fn commit_renames_staging_into_place() {
        let root = scratch("commit");
        let store = CheckpointStore::open(&root).unwrap();
        let dir = commit_one(&store, 4);
        assert_eq!(dir, store.committed_dir(4));
        assert!(CheckpointStore::manifest_path(&dir).exists());
        assert!(
            store.root().read_dir().unwrap().count() == 1,
            "no staging debris"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn candidates_are_newest_first_and_skip_staging() {
        let root = scratch("candidates");
        let store = CheckpointStore::open(&root).unwrap();
        commit_one(&store, 2);
        commit_one(&store, 8);
        commit_one(&store, 4);
        let _still_pending = store.begin(12).unwrap();
        let got: Vec<u64> = store
            .candidates()
            .unwrap()
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, vec![8, 4, 2]);
        assert_eq!(store.latest().unwrap().unwrap().0, 8);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn retain_keeps_newest_and_sweeps_tmp_debris() {
        let root = scratch("retain");
        let store = CheckpointStore::open(&root).unwrap();
        for i in [1, 2, 3, 4] {
            commit_one(&store, i);
        }
        // Simulated crash: staging dir left behind, never committed.
        drop(store.begin(5).unwrap());
        store.retain(2).unwrap();
        let got: Vec<u64> = store
            .candidates()
            .unwrap()
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, vec![4, 3]);
        assert_eq!(
            store.root().read_dir().unwrap().count(),
            2,
            "tmp debris swept"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn member_stores_are_disjoint() {
        let root = scratch("members");
        let a = CheckpointStore::open_member(&root, 0).unwrap();
        let b = CheckpointStore::open_member(&root, 1).unwrap();
        assert_ne!(a.root(), b.root());
        assert_eq!(a.root(), CheckpointStore::member_root(&root, 0));
        commit_one(&a, 4);
        // Member 1's store is untouched by member 0's commits.
        assert!(b.latest().unwrap().is_none());
        assert_eq!(a.latest().unwrap().unwrap().0, 4);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reopened_root_enumerates_prior_jobs_and_members() {
        let root = scratch("reopen");
        let a = CheckpointStore::open_member(&root, 3).unwrap();
        commit_one(&a, 2);
        let b = CheckpointStore::open_job(&root, "deadbeef01").unwrap();
        commit_one(&b, 6);
        // Unrelated files and directories are not store roots.
        std::fs::write(root.join("cache.json"), b"{}").unwrap();
        std::fs::create_dir_all(root.join("scratch")).unwrap();
        // A new handle over the same directory (a restarted process)
        // sees both roots, in sorted order, with their snapshots.
        let roots = CheckpointStore::roots(&root).unwrap();
        let names: Vec<&str> = roots.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["job-deadbeef01", "member-0003"]);
        let reopened = CheckpointStore::open(&roots[0].1).unwrap();
        assert_eq!(reopened.latest().unwrap().unwrap().0, 6);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn roots_of_a_missing_directory_are_empty() {
        let root = scratch("missing-roots");
        assert!(CheckpointStore::roots(&root).unwrap().is_empty());
    }

    #[test]
    fn sweep_roots_applies_the_retention_policy() {
        let root = scratch("sweep");
        for job in ["aa", "bb", "cc"] {
            let s = CheckpointStore::open_job(&root, job).unwrap();
            commit_one(&s, 1);
        }
        let removed = CheckpointStore::sweep_roots(&root, |name| name == "job-bb").unwrap();
        assert_eq!(removed, vec!["job-aa", "job-cc"]);
        let names: Vec<String> = CheckpointStore::roots(&root)
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["job-bb"]);
        // The kept root's snapshots are untouched.
        let kept = CheckpointStore::open_job(&root, "bb").unwrap();
        assert_eq!(kept.latest().unwrap().unwrap().0, 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn job_root_sanitizes_hostile_ids() {
        let root = PathBuf::from("/srv/foam");
        assert_eq!(
            CheckpointStore::job_root(&root, "../../etc/passwd"),
            root.join("job-....etcpasswd")
        );
        assert_eq!(
            CheckpointStore::job_root(&root, "0123abcd"),
            root.join("job-0123abcd")
        );
    }

    #[test]
    fn abort_discards_staging() {
        let root = scratch("abort");
        let store = CheckpointStore::open(&root).unwrap();
        let pending = store.begin(7).unwrap();
        touch(&CheckpointStore::shard_path(pending.staging_dir(), 0));
        pending.abort();
        assert!(store.latest().unwrap().is_none());
        assert_eq!(store.root().read_dir().unwrap().count(), 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn recommit_replaces_existing_interval() {
        let root = scratch("recommit");
        let store = CheckpointStore::open(&root).unwrap();
        commit_one(&store, 3);
        let pending = store.begin(3).unwrap();
        touch(&CheckpointStore::manifest_path(pending.staging_dir()));
        std::fs::write(
            CheckpointStore::shard_path(pending.staging_dir(), 1),
            b"second",
        )
        .unwrap();
        pending.commit().unwrap();
        let (_, dir) = store.latest().unwrap().unwrap();
        assert!(CheckpointStore::shard_path(&dir, 1).exists());
        assert!(
            !CheckpointStore::shard_path(&dir, 0).exists(),
            "old contents replaced"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }
}
