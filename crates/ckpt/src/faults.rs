//! Deterministic checkpoint-store fault injection.
//!
//! The comm layer's `FaultPlan` (in `foam-mpi`) exercises lost and
//! reordered messages; this module is its storage counterpart, so the
//! full fault matrix — comm, storage, physics — can be injected into one
//! seeded run. A [`FaultyStore`] wraps a [`CheckpointStore`] and, at the
//! intervals named by its [`StoreFaultPlan`], produces exactly the
//! failure modes real filesystems produce:
//!
//! * [`StoreFaultKind::TornWrite`] — a shard is truncated mid-file
//!   *after* the checkpoint commits, as when a node loses power during
//!   a buffered write;
//! * [`StoreFaultKind::CrcCorruption`] — one payload byte is flipped in
//!   a committed shard (bit rot), which the section CRC64 catches at
//!   load time;
//! * [`StoreFaultKind::WriteError`] — `begin` fails with an
//!   ENOSPC-style typed I/O error, as when the disk fills up.
//!
//! All three are deterministic: the same plan corrupts the same bytes
//! of the same interval every run, which is what lets the run
//! supervisor's recovery reports stay byte-identical across reruns.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::store::{CheckpointStore, PendingCheckpoint};
use crate::CkptError;

/// The storage failure modes the fault matrix can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFaultKind {
    /// Truncate one committed shard to half its length (power loss
    /// during a buffered write). Caught as [`CkptError::Truncated`] or
    /// [`CkptError::CrcMismatch`] on load.
    TornWrite,
    /// Flip one byte of a committed shard (bit rot). Caught as
    /// [`CkptError::CrcMismatch`] on load.
    CrcCorruption,
    /// Fail the checkpoint's `begin` with an ENOSPC-style I/O error —
    /// the snapshot is never written at all.
    WriteError,
}

/// One scheduled storage fault: fire `kind` at checkpoint `interval`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreFault {
    /// Coupling interval of the checkpoint to sabotage.
    pub interval: u64,
    /// Which failure mode to produce.
    pub kind: StoreFaultKind,
}

/// A deterministic schedule of checkpoint-store faults. Each entry
/// fires at most once per [`FaultyStore`] instance (one sabotage per
/// scheduled interval), mirroring how the comm `FaultPlan`'s
/// `drop_first` rules are bounded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreFaultPlan {
    faults: Vec<StoreFault>,
}

impl StoreFaultPlan {
    /// An empty plan (no faults — `FaultyStore` becomes a transparent
    /// wrapper).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Schedule a torn shard write at checkpoint `interval`.
    pub fn torn_write(mut self, interval: u64) -> Self {
        self.faults.push(StoreFault {
            interval,
            kind: StoreFaultKind::TornWrite,
        });
        self
    }

    /// Schedule a one-byte shard corruption at checkpoint `interval`.
    pub fn crc_corruption(mut self, interval: u64) -> Self {
        self.faults.push(StoreFault {
            interval,
            kind: StoreFaultKind::CrcCorruption,
        });
        self
    }

    /// Schedule an ENOSPC-style `begin` failure at checkpoint
    /// `interval`.
    pub fn write_error(mut self, interval: u64) -> Self {
        self.faults.push(StoreFault {
            interval,
            kind: StoreFaultKind::WriteError,
        });
        self
    }

    /// Consume and return the fault scheduled for `interval`, if any.
    fn take(&mut self, interval: u64) -> Option<StoreFaultKind> {
        let pos = self.faults.iter().position(|f| f.interval == interval)?;
        Some(self.faults.remove(pos).kind)
    }
}

/// A [`CheckpointStore`] wrapper that injects the faults scheduled by a
/// [`StoreFaultPlan`] and is otherwise transparent. With an empty plan
/// it adds no behavior, so production paths route through it
/// unconditionally.
#[derive(Debug)]
pub struct FaultyStore {
    inner: CheckpointStore,
    plan: Mutex<StoreFaultPlan>,
}

impl FaultyStore {
    /// Wrap `inner`, sabotaging the intervals scheduled in `plan`.
    pub fn wrap(inner: CheckpointStore, plan: StoreFaultPlan) -> Self {
        FaultyStore {
            inner,
            plan: Mutex::new(plan),
        }
    }

    /// The wrapped store (for read paths — loading is never sabotaged;
    /// the corruption already happened at commit time).
    pub fn store(&self) -> &CheckpointStore {
        &self.inner
    }

    /// Like [`CheckpointStore::begin`], but a scheduled
    /// [`StoreFaultKind::WriteError`] fails here with a typed
    /// ENOSPC-style error, and a scheduled torn-write/corruption arms
    /// the returned [`PendingCheckpoint`] to sabotage its own commit.
    pub fn begin(&self, interval: u64) -> Result<PendingCheckpoint, CkptError> {
        let fault = self.plan.lock().expect("fault plan lock").take(interval);
        if let Some(StoreFaultKind::WriteError) = fault {
            return Err(CkptError::Io {
                op: "write shard",
                detail: "injected fault: no space left on device".to_string(),
            });
        }
        let mut pending = self.inner.begin(interval)?;
        if let Some(kind) = fault {
            pending.arm(kind);
        }
        Ok(pending)
    }

    /// Passthrough to [`CheckpointStore::retain`].
    pub fn retain(&self, keep: usize) -> Result<(), CkptError> {
        self.inner.retain(keep)
    }
}

/// Sabotage a fully written staging directory according to `kind`,
/// just before it is renamed into place. Deterministic: shards are
/// chosen by sorted file name, and the corruption touches fixed
/// offsets.
pub(crate) fn apply(staging: &Path, kind: StoreFaultKind) -> Result<(), CkptError> {
    let mut shards: Vec<PathBuf> = std::fs::read_dir(staging)
        .map_err(|e| CkptError::io("list staging dir", e))?
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("rank-") && n.ends_with(".foam"))
        })
        .collect();
    shards.sort();
    match kind {
        StoreFaultKind::TornWrite => {
            // Tear the highest-rank shard: truncate to half its length.
            if let Some(path) = shards.last() {
                let len = std::fs::metadata(path)
                    .map_err(|e| CkptError::io("stat shard", e))?
                    .len();
                let f = std::fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| CkptError::io("open shard", e))?;
                f.set_len(len / 2)
                    .map_err(|e| CkptError::io("truncate shard", e))?;
            }
        }
        StoreFaultKind::CrcCorruption => {
            // Flip the last byte of the lowest-rank shard's payload.
            if let Some(path) = shards.first() {
                let mut bytes = std::fs::read(path).map_err(|e| CkptError::io("read shard", e))?;
                if let Some(last) = bytes.last_mut() {
                    *last ^= 0xFF;
                }
                std::fs::write(path, bytes).map_err(|e| CkptError::io("write shard", e))?;
            }
        }
        StoreFaultKind::WriteError => {
            unreachable!("WriteError fails begin(); it is never armed on a pending checkpoint")
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "foam-ckpt-faults-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn commit_two_shards(store: &FaultyStore, interval: u64) -> PathBuf {
        let pending = store.begin(interval).unwrap();
        std::fs::write(
            CheckpointStore::shard_path(pending.staging_dir(), 0),
            vec![0xAAu8; 64],
        )
        .unwrap();
        std::fs::write(
            CheckpointStore::shard_path(pending.staging_dir(), 1),
            vec![0xBBu8; 64],
        )
        .unwrap();
        std::fs::write(
            CheckpointStore::manifest_path(pending.staging_dir()),
            b"manifest",
        )
        .unwrap();
        pending.commit().unwrap()
    }

    #[test]
    fn empty_plan_is_transparent() {
        let root = scratch("transparent");
        let store = FaultyStore::wrap(CheckpointStore::open(&root).unwrap(), StoreFaultPlan::new());
        let dir = commit_two_shards(&store, 3);
        assert_eq!(
            std::fs::read(CheckpointStore::shard_path(&dir, 0)).unwrap(),
            vec![0xAAu8; 64]
        );
        assert_eq!(
            std::fs::read(CheckpointStore::shard_path(&dir, 1)).unwrap(),
            vec![0xBBu8; 64]
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_write_halves_the_last_shard() {
        let root = scratch("torn");
        let store = FaultyStore::wrap(
            CheckpointStore::open(&root).unwrap(),
            StoreFaultPlan::new().torn_write(3),
        );
        let dir = commit_two_shards(&store, 3);
        assert_eq!(
            std::fs::metadata(CheckpointStore::shard_path(&dir, 1))
                .unwrap()
                .len(),
            32,
            "highest-rank shard torn to half length"
        );
        assert_eq!(
            std::fs::metadata(CheckpointStore::shard_path(&dir, 0))
                .unwrap()
                .len(),
            64,
            "other shards untouched"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn crc_corruption_flips_one_byte_of_the_first_shard() {
        let root = scratch("crc");
        let store = FaultyStore::wrap(
            CheckpointStore::open(&root).unwrap(),
            StoreFaultPlan::new().crc_corruption(5),
        );
        let dir = commit_two_shards(&store, 5);
        let bytes = std::fs::read(CheckpointStore::shard_path(&dir, 0)).unwrap();
        assert_eq!(bytes.len(), 64);
        assert_eq!(*bytes.last().unwrap(), 0xAA ^ 0xFF);
        assert!(bytes[..63].iter().all(|&b| b == 0xAA));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn write_error_fails_begin_with_a_typed_io_error() {
        let root = scratch("enospc");
        let store = FaultyStore::wrap(
            CheckpointStore::open(&root).unwrap(),
            StoreFaultPlan::new().write_error(2),
        );
        let err = store.begin(2).unwrap_err();
        assert!(
            matches!(
                err,
                CkptError::Io {
                    op: "write shard",
                    ..
                }
            ),
            "{err:?}"
        );
        // The fault fired once; the retried checkpoint succeeds.
        let dir = commit_two_shards(&store, 2);
        assert!(CheckpointStore::manifest_path(&dir).exists());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn faults_only_fire_at_their_interval() {
        let root = scratch("other-intervals");
        let store = FaultyStore::wrap(
            CheckpointStore::open(&root).unwrap(),
            StoreFaultPlan::new().torn_write(7),
        );
        let dir = commit_two_shards(&store, 3);
        assert_eq!(
            std::fs::metadata(CheckpointStore::shard_path(&dir, 1))
                .unwrap()
                .len(),
            64,
            "interval 3 untouched by a fault scheduled at 7"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }
}
