//! Spectral advection of grid-point tracers (temperature and moisture)
//! by the QG winds.
//!
//! CCM2 advects moisture semi-Lagrangian-ly; PCCM2's parallelization of
//! that step is one of the paper's cited modifications. Here tracers are
//! advected with the transform method: the advective tendency
//! −(u·∇)X is computed on the grid from spectral gradients, then
//! re-analyzed. A weak spectral hyperdiffusion keeps the cascade tame,
//! and a grid-space clipper preserves positivity of moisture.

use foam_grid::constants::EARTH_RADIUS;
use foam_grid::Field2;
use foam_mpi::Comm;
use foam_spectral::{ParTransform, SpectralField};

use crate::dynamics::jacobian_into;
use crate::workspace::DynWorkspace;

/// Advective tendency of tracer `x` (spectral) under streamfunction
/// `psi` (spectral): returns −J(ψ, x) in spectral space. Identical
/// machinery to the PV Jacobian.
pub fn advect(
    par: &ParTransform,
    comm: &Comm,
    psi: &SpectralField,
    x: &SpectralField,
) -> SpectralField {
    let mut t = crate::dynamics::jacobian(par, comm, psi, x);
    t.scale(-1.0);
    t
}

/// One explicit advection-diffusion step of a *grid-space* tracer slab
/// owned by this rank: analyze → tendency → synthesize increment → apply.
///
/// Returns the updated local slab. `nu4` is the hyperdiffusion
/// coefficient; `floor` clips the result from below (0 for moisture,
/// f64::NEG_INFINITY for temperature anomalies).
#[allow(clippy::too_many_arguments)]
pub fn advect_grid_tracer(
    par: &ParTransform,
    comm: &Comm,
    psi: &SpectralField,
    local: &Field2,
    dt: f64,
    nu4: f64,
    floor: f64,
) -> Field2 {
    let spec = par.analyze(comm, local);
    let tend = advect(par, comm, psi, &spec);
    let mut new_spec = spec;
    new_spec.axpy(dt, &tend);
    // Implicit ∇²+∇⁴ diffusion; the ∇² part offsets the weak
    // amplification of forward-Euler advection.
    new_spec.apply_diffusion(nu4 * 3.0e-11, nu4, dt);
    let mut out = par.synthesize(&new_spec);
    // The spectral round trip is lossy for non-band-limited fields; keep
    // the physical bound.
    for v in out.as_mut_slice() {
        if *v < floor {
            *v = floor;
        }
    }
    out
}

/// Allocation-free [`advect_grid_tracer`]: the spectral round trip
/// runs entirely in `dw`'s scratch and the updated slab overwrites
/// `out` (callers typically `std::mem::swap` it with the state slab).
/// Bit-identical to the allocating form.
///
/// ```
/// use foam_atm::tracers::{advect_grid_tracer, advect_grid_tracer_ws};
/// use foam_atm::workspace::DynWorkspace;
/// use foam_grid::{AtmGrid, Field2};
/// use foam_mpi::Universe;
/// use foam_spectral::{Complex, ParTransform, SpectralField, SphericalTransform, Truncation};
///
/// Universe::run(1, |comm| {
///     let par = ParTransform::new(
///         SphericalTransform::new(AtmGrid::new(24, 16), Truncation::rhomboidal(5)),
///         comm,
///     );
///     let mut psi = SpectralField::zeros(par.base.trunc);
///     psi.set(2, 3, Complex::new(3.0e6, 1.0e6));
///     let local = Field2::from_fn(par.base.grid.nlon, par.n_local_rows(), |i, jl| {
///         (i as f64 * 0.3).sin() + jl as f64 * 0.01
///     });
///     let a = advect_grid_tracer(&par, comm, &psi, &local, 1800.0, 1e16, 0.0);
///     let mut dw = DynWorkspace::new(&par, 3);
///     let mut b = Field2::zeros(par.base.grid.nlon, par.n_local_rows());
///     advect_grid_tracer_ws(&par, comm, &psi, &local, 1800.0, 1e16, 0.0, &mut dw, &mut b);
///     assert_eq!(a.as_slice(), b.as_slice());
/// });
/// ```
#[allow(clippy::too_many_arguments)]
pub fn advect_grid_tracer_ws(
    par: &ParTransform,
    comm: &Comm,
    psi: &SpectralField,
    local: &Field2,
    dt: f64,
    nu4: f64,
    floor: f64,
    dw: &mut DynWorkspace,
    out: &mut Field2,
) {
    let DynWorkspace {
        spec,
        tr_spec,
        tr_tend,
        ga,
        gb,
        gc,
        gd,
        gj,
        ..
    } = dw;
    par.analyze_into(comm, local, spec, tr_spec);
    // Advective tendency −J(ψ, x), as in [`advect`].
    jacobian_into(par, comm, psi, tr_spec, spec, ga, gb, gc, gd, gj, tr_tend);
    tr_tend.scale(-1.0);
    tr_spec.axpy(dt, tr_tend);
    // Implicit ∇²+∇⁴ diffusion; the ∇² part offsets the weak
    // amplification of forward-Euler advection.
    tr_spec.apply_diffusion(nu4 * 3.0e-11, nu4, dt);
    par.synthesize_into(tr_spec, spec, out);
    // The spectral round trip is lossy for non-band-limited fields; keep
    // the physical bound.
    for v in out.as_mut_slice() {
        if *v < floor {
            *v = floor;
        }
    }
}

/// Horizontal winds (u, v) \[m/s\] on this rank's rows from a
/// streamfunction, dividing out the cos φ factor of the spectral
/// gradients.
pub fn winds_on_rows(par: &ParTransform, psi: &SpectralField) -> (Field2, Field2) {
    let mut ucos = par.synthesize_cosgrad(psi);
    ucos.scale(-1.0 / EARTH_RADIUS);
    let mut vcos = par.synthesize_dlambda(psi);
    vcos.scale(1.0 / EARTH_RADIUS);
    let grid = &par.base.grid;
    let mut u = Field2::zeros(grid.nlon, par.n_local_rows());
    let mut v = Field2::zeros(grid.nlon, par.n_local_rows());
    for jl in 0..par.n_local_rows() {
        let cos = grid.lats[par.j0 + jl].cos();
        for i in 0..grid.nlon {
            u.set(i, jl, ucos.get(i, jl) / cos);
            v.set(i, jl, vcos.get(i, jl) / cos);
        }
    }
    (u, v)
}

/// Allocation-free [`winds_on_rows`]: the cos-gradient and λ-derivative
/// slabs are synthesized into `dw` scratch and the winds overwrite
/// `u`/`v`. Bit-identical to the allocating form.
///
/// ```
/// use foam_atm::tracers::{winds_on_rows, winds_on_rows_into};
/// use foam_atm::workspace::DynWorkspace;
/// use foam_grid::{AtmGrid, Field2};
/// use foam_mpi::Universe;
/// use foam_spectral::{Complex, ParTransform, SpectralField, SphericalTransform, Truncation};
///
/// Universe::run(1, |comm| {
///     let par = ParTransform::new(
///         SphericalTransform::new(AtmGrid::new(24, 16), Truncation::rhomboidal(5)),
///         comm,
///     );
///     let mut psi = SpectralField::zeros(par.base.trunc);
///     psi.set(1, 2, Complex::new(2.0e6, -0.5e6));
///     let (u, v) = winds_on_rows(&par, &psi);
///     let mut dw = DynWorkspace::new(&par, 3);
///     let mut u2 = Field2::zeros(par.base.grid.nlon, par.n_local_rows());
///     let mut v2 = u2.clone();
///     winds_on_rows_into(&par, &psi, &mut dw, &mut u2, &mut v2);
///     assert_eq!(u.as_slice(), u2.as_slice());
///     assert_eq!(v.as_slice(), v2.as_slice());
/// });
/// ```
pub fn winds_on_rows_into(
    par: &ParTransform,
    psi: &SpectralField,
    dw: &mut DynWorkspace,
    u: &mut Field2,
    v: &mut Field2,
) {
    let DynWorkspace { spec, ga, gb, .. } = dw;
    par.synthesize_cosgrad_into(psi, spec, ga);
    ga.scale(-1.0 / EARTH_RADIUS);
    par.synthesize_dlambda_into(psi, spec, gb);
    gb.scale(1.0 / EARTH_RADIUS);
    let grid = &par.base.grid;
    for jl in 0..par.n_local_rows() {
        let cos = grid.lats[par.j0 + jl].cos();
        for i in 0..grid.nlon {
            u.set(i, jl, ga.get(i, jl) / cos);
            v.set(i, jl, gb.get(i, jl) / cos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foam_grid::AtmGrid;
    use foam_mpi::Universe;
    use foam_spectral::{Complex, SphericalTransform, Truncation};

    fn par(comm: &Comm) -> ParTransform {
        ParTransform::new(
            SphericalTransform::new(AtmGrid::new(24, 16), Truncation::rhomboidal(5)),
            comm,
        )
    }

    /// Solid-body rotation streamfunction ψ = −ω a² μ.
    fn solid_body(par: &ParTransform, omega: f64) -> SpectralField {
        let mut psi = SpectralField::zeros(par.base.trunc);
        // μ = sqrt(2/3) P̄₁⁰ ⇒ coefficient a(0,1) = −ω a² sqrt(2/3).
        psi.set(
            0,
            1,
            Complex::new(
                -omega * EARTH_RADIUS * EARTH_RADIUS * (2.0f64 / 3.0).sqrt(),
                0.0,
            ),
        );
        psi
    }

    #[test]
    fn winds_of_solid_body_rotation() {
        Universe::run(1, |comm| {
            let par = par(comm);
            let omega = 5.0e-6;
            let psi = solid_body(&par, omega);
            let (u, v) = winds_on_rows(&par, &psi);
            for jl in 0..par.n_local_rows() {
                let lat = par.base.grid.lats[par.j0 + jl];
                let expect = omega * EARTH_RADIUS * lat.cos();
                for i in 0..par.base.grid.nlon {
                    assert!((u.get(i, jl) - expect).abs() < 1e-6 * expect.abs().max(1.0));
                    assert!(v.get(i, jl).abs() < 1e-8);
                }
            }
        });
    }

    #[test]
    fn solid_body_advection_rotates_tracer() {
        Universe::run(1, |comm| {
            let par = par(comm);
            // One full rotation in 20 days.
            let omega = 2.0 * std::f64::consts::PI / (20.0 * 86_400.0);
            let psi = solid_body(&par, omega);
            // Tracer: the (m=1, n=2) harmonic — band-limited, rotates
            // without deformation under solid-body flow.
            let mut x = SpectralField::zeros(par.base.trunc);
            x.set(1, 2, Complex::new(1.0, 0.0));
            let dt = 1800.0;
            let steps = 240; // 5 days = quarter rotation
            let mut local = par.synthesize(&x);
            for _ in 0..steps {
                local = advect_grid_tracer(&par, comm, &psi, &local, dt, 0.0, f64::NEG_INFINITY);
            }
            let spec = par.analyze(comm, &local);
            let z = spec.get(1, 2);
            // Pattern cos(λ + φ(t)) with φ = −ω t (eastward drift):
            // coefficient phase advances by −m ω t.
            let expect_phase = -(omega * dt * steps as f64);
            let measured = z.im.atan2(z.re);
            let diff = (measured - expect_phase).rem_euclid(2.0 * std::f64::consts::PI);
            let diff = diff.min(2.0 * std::f64::consts::PI - diff);
            assert!(diff < 0.1, "phase {measured} vs {expect_phase}");
            // Amplitude preserved (no hyperdiffusion applied).
            assert!((z.abs() - 1.0).abs() < 0.05, "amplitude {}", z.abs());
        });
    }

    #[test]
    fn advection_conserves_global_mean() {
        Universe::run(2, |comm| {
            let par = par(comm);
            let mut psi = SpectralField::zeros(par.base.trunc);
            psi.set(2, 3, Complex::new(3.0e6, 1.0e6));
            let mut x = SpectralField::zeros(par.base.trunc);
            x.set(0, 0, Complex::new(2.0, 0.0));
            x.set(1, 3, Complex::new(0.5, 0.2));
            let mut local = par.synthesize(&x);
            let mean0 = par.analyze(comm, &local).get(0, 0).re;
            for _ in 0..10 {
                local =
                    advect_grid_tracer(&par, comm, &psi, &local, 1800.0, 0.0, f64::NEG_INFINITY);
            }
            let mean1 = par.analyze(comm, &local).get(0, 0).re;
            assert!(
                (mean1 - mean0).abs() < 1e-10 * mean0.abs(),
                "mean drift {mean0} → {mean1}"
            );
        });
    }

    #[test]
    fn moisture_floor_is_enforced() {
        Universe::run(1, |comm| {
            let par = par(comm);
            let mut psi = SpectralField::zeros(par.base.trunc);
            psi.set(3, 4, Complex::new(5.0e6, -2.0e6));
            // A sharply varying non-negative field (spectral ringing would
            // go negative without the clip).
            let g = &par.base.grid;
            let local = Field2::from_fn(g.nlon, par.n_local_rows(), |i, jl| {
                if i % 7 == 0 && jl % 3 == 0 {
                    0.02
                } else {
                    0.0
                }
            });
            let out = advect_grid_tracer(&par, comm, &psi, &local, 1800.0, 1e16, 0.0);
            assert!(out.as_slice().iter().all(|&v| v >= 0.0));
        });
    }
}
