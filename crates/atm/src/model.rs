//! The latitude-decomposed atmosphere model: QG dynamics + spectral
//! tracers + column physics, exchanging surface fields with the coupler.

use foam_grid::constants::R_DRY;
use foam_grid::{AtmGrid, Field2};
use foam_mpi::Comm;
use foam_physics::forcing::Forcings;
use foam_physics::radiation::OrbitalState;
use foam_physics::surface::BulkFluxes;
use foam_physics::{AtmColumn, ColumnPhysics, PhysicsConfig, SurfaceKind, SurfaceState};
use foam_spectral::{Complex, ParTransform, SpectralField, SphericalTransform, Truncation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dynamics::{QgConfig, QgCore, QgState};
use crate::tracers::{
    advect_grid_tracer, advect_grid_tracer_ws, winds_on_rows, winds_on_rows_into,
};
use crate::workspace::{AtmWorkspace, DynWorkspace};
use foam_ckpt::Codec;

/// Midlatitude reference Coriolis parameter for thermal-wind coupling.
const F0: f64 = 1.0e-4;

/// Atmosphere configuration. The default is the paper's R15 setup
/// (48 × 40 × 18, Δt = 30 min); tests use smaller grids.
#[derive(Debug, Clone)]
pub struct AtmConfig {
    pub nlon: usize,
    pub nlat: usize,
    /// Rhomboidal truncation wavenumber (15 for R15).
    pub m_max: usize,
    /// Physics levels (paper: 18).
    pub nlev_phys: usize,
    /// Time step \[s\] (paper: 30 min).
    pub dt: f64,
    pub dynamics: QgConfig,
    pub physics: PhysicsConfig,
    /// Tracer hyperdiffusion \[m⁴/s\].
    pub tracer_nu4: f64,
    /// Include orographic forcing of the bottom dynamic level
    /// (stationary waves from the synthetic topography).
    pub orography: bool,
    /// Seed for the initial perturbation.
    pub seed: u64,
}

impl Default for AtmConfig {
    fn default() -> Self {
        AtmConfig {
            nlon: 48,
            nlat: 40,
            m_max: 15,
            nlev_phys: 18,
            dt: 1800.0,
            dynamics: QgConfig::default(),
            physics: PhysicsConfig::default(),
            tracer_nu4: 1.0e16,
            orography: true,
            seed: 7,
        }
    }
}

impl AtmConfig {
    /// A reduced configuration for fast tests: 24 × 16 grid, R5, 8 levels.
    pub fn tiny(seed: u64) -> Self {
        AtmConfig {
            nlon: 24,
            nlat: 16,
            m_max: 5,
            nlev_phys: 8,
            seed,
            ..Default::default()
        }
    }
}

/// Full prognostic state of the atmosphere on one rank.
#[derive(Debug, Clone)]
pub struct AtmState {
    pub qg: QgState,
    /// Temperature per physics level, this rank's latitude rows \[K\].
    pub t: Vec<Field2>,
    /// Specific humidity per physics level.
    pub q: Vec<Field2>,
    /// Radiation caches, one per local column (flattened `jl·nlon + i`).
    pub rad: Vec<foam_physics::RadCache>,
    /// Simulated seconds since the run started.
    pub sim_t: f64,
    pub step_count: u64,
}

/// Surface forcing handed to the atmosphere by the coupler for one step,
/// on this rank's local cells (flattened `jl·nlon + i`).
#[derive(Debug, Clone)]
pub struct AtmForcing {
    /// Turbulent surface fluxes computed on the overlap grid and
    /// area-averaged to the atmosphere cells.
    pub fluxes: Vec<BulkFluxes>,
    /// Effective radiating surface temperature \[K\].
    pub t_sfc: Vec<f64>,
    /// Effective surface albedo.
    pub albedo: Vec<f64>,
}

/// What the atmosphere exports to the coupler after a step (local rows).
#[derive(Debug, Clone)]
pub struct AtmExport {
    /// Lowest-level air temperature \[K\], humidity, winds \[m/s\].
    pub t_low: Field2,
    pub q_low: Field2,
    pub u_low: Field2,
    pub v_low: Field2,
    /// Precipitation rate over the step \[kg m⁻² s⁻¹\].
    pub precip: Field2,
    /// Shortwave absorbed at the surface and downwelling longwave \[W/m²\].
    pub sw_sfc: Field2,
    pub lw_down: Field2,
    /// Column cloud fraction.
    pub cloud: Field2,
    /// Physics work units per local column (load-imbalance diagnostic).
    pub work: Vec<usize>,
}

impl Codec for AtmState {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.qg.encode(buf);
        self.t.encode(buf);
        self.q.encode(buf);
        self.rad.encode(buf);
        self.sim_t.encode(buf);
        self.step_count.encode(buf);
    }
    fn decode(r: &mut foam_ckpt::ByteReader<'_>) -> Result<Self, foam_ckpt::CkptError> {
        Ok(AtmState {
            qg: QgState::decode(r)?,
            t: Vec::<Field2>::decode(r)?,
            q: Vec::<Field2>::decode(r)?,
            rad: Vec::<foam_physics::RadCache>::decode(r)?,
            sim_t: f64::decode(r)?,
            step_count: u64::decode(r)?,
        })
    }
}

impl Codec for AtmExport {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.t_low.encode(buf);
        self.q_low.encode(buf);
        self.u_low.encode(buf);
        self.v_low.encode(buf);
        self.precip.encode(buf);
        self.sw_sfc.encode(buf);
        self.lw_down.encode(buf);
        self.cloud.encode(buf);
        self.work.encode(buf);
    }
    fn decode(r: &mut foam_ckpt::ByteReader<'_>) -> Result<Self, foam_ckpt::CkptError> {
        Ok(AtmExport {
            t_low: Field2::decode(r)?,
            q_low: Field2::decode(r)?,
            u_low: Field2::decode(r)?,
            v_low: Field2::decode(r)?,
            precip: Field2::decode(r)?,
            sw_sfc: Field2::decode(r)?,
            lw_down: Field2::decode(r)?,
            cloud: Field2::decode(r)?,
            work: Vec::<usize>::decode(r)?,
        })
    }
}

/// The atmosphere component bound to one rank of its communicator.
pub struct AtmModel {
    pub cfg: AtmConfig,
    pub par: ParTransform,
    core: QgCore,
    pub phys: ColumnPhysics,
    /// Orographic PV (f·h/H) in spectral space, if enabled.
    orog_pv: Option<SpectralField>,
    /// Scenario forcings (CO₂ / solar / aerosol time series) folded
    /// into the column physics once per simulated day; empty = identity.
    forcings: Forcings,
}

impl AtmModel {
    pub fn new(cfg: AtmConfig, comm: &Comm) -> Self {
        let grid = AtmGrid::new(cfg.nlon, cfg.nlat);
        let trunc = Truncation::rhomboidal(cfg.m_max);
        let par = ParTransform::new(SphericalTransform::new(grid, trunc), comm);
        let core = QgCore::new(cfg.dynamics.clone(), trunc);
        let phys = ColumnPhysics::new(cfg.physics);
        let orog_pv = if cfg.orography {
            // f·h/H with H = 8 km scale height, from the synthetic planet,
            // analyzed on the full grid (identical on every rank).
            let world = foam_grid::World::earthlike();
            let grid = &par.base.grid;
            let f = Field2::from_fn(grid.nlon, grid.nlat, |i, j| {
                let h = world.elevation(grid.lons[i], grid.lats[j]);
                foam_grid::constants::coriolis(grid.lats[j]) * h / 8000.0
            });
            Some(par.base.analyze(&f))
        } else {
            None
        };
        AtmModel {
            cfg,
            par,
            core,
            phys,
            orog_pv,
            forcings: Forcings::default(),
        }
    }

    /// Install scenario forcings (the driver threads
    /// `FoamConfig::forcings` here). The default is empty — identity —
    /// so unforced runs are bit-identical with or without this call.
    pub fn set_forcings(&mut self, forcings: Forcings) {
        self.forcings = forcings;
    }

    /// The installed scenario forcings.
    pub fn forcings(&self) -> &Forcings {
        &self.forcings
    }

    /// The column-physics engine in effect at simulated time `sim_t`:
    /// the configured engine with any scenario forcing for that
    /// simulated day folded in. `PhysicsConfig` is `Copy`, so this is
    /// stack-only — safe in the zero-churn hot loop. The forcing is a
    /// pure function of the integer simulated day and static series,
    /// which is what makes checkpoint/resume of forced runs
    /// bit-identical for free.
    #[inline]
    fn effective_phys(&self, sim_t: f64) -> ColumnPhysics {
        if self.forcings.is_empty() {
            self.phys.clone()
        } else {
            ColumnPhysics::new(self.forcings.apply(self.phys.cfg, Forcings::day_of(sim_t)))
        }
    }

    #[inline]
    pub fn grid(&self) -> &AtmGrid {
        &self.par.base.grid
    }

    /// Local latitude rows `[j0, j1)`.
    #[inline]
    pub fn rows(&self) -> (usize, usize) {
        (self.par.j0, self.par.j1)
    }

    #[inline]
    pub fn n_local(&self) -> usize {
        self.par.n_local_rows() * self.cfg.nlon
    }

    /// Climatological surface air temperature used for initialization
    /// \[K\].
    pub fn t_init(lat: f64) -> f64 {
        250.0 + 50.0 * lat.cos() * lat.cos()
    }

    /// Build a balanced initial state: thermal-wind jets consistent with
    /// the initial temperature field plus a small seeded perturbation.
    pub fn init_state(&self) -> AtmState {
        let grid = self.grid();
        let nlocal_rows = self.par.n_local_rows();
        let nl = self.cfg.nlev_phys;

        // Temperature/humidity columns by latitude.
        let mut t = vec![Field2::zeros(grid.nlon, nlocal_rows); nl];
        let mut q = vec![Field2::zeros(grid.nlon, nlocal_rows); nl];
        for jl in 0..nlocal_rows {
            let lat = grid.lats[self.par.j0 + jl];
            let col = AtmColumn::standard(nl, Self::t_init(lat));
            for k in 0..nl {
                for i in 0..grid.nlon {
                    t[k].set(i, jl, col.t[k]);
                    q[k].set(i, jl, col.q[k]);
                }
            }
        }

        // Balanced QG state from the equilibrium shear of that T field,
        // plus a deterministic seeded perturbation to break zonal
        // symmetry (same on every rank).
        let nld = self.cfg.dynamics.nlev;
        let dpsi_eq = self.equilibrium_shear_serial(&t);
        let mut psi: Vec<SpectralField> = (0..nld)
            .map(|_| SpectralField::zeros(self.par.base.trunc))
            .collect();
        // ψ with zero vertical mean and the prescribed shears.
        // ψ_k = Σ_{j≥k} Δψ_j − mean over levels.
        for k in (0..nld - 1).rev() {
            let mut p = psi[k + 1].clone();
            p.axpy(1.0, &dpsi_eq[k]);
            psi[k] = p;
        }
        let mut mean = SpectralField::zeros(self.par.base.trunc);
        for p in &psi {
            mean.axpy(1.0 / nld as f64, p);
        }
        for p in psi.iter_mut() {
            p.axpy(-1.0, &mean);
        }
        let mut qg_now = self.core.pv_from_psi(&psi);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        for qf in qg_now.iter_mut() {
            for (m, n) in self.par.base.trunc.pairs() {
                if (2..=5).contains(&m) && n <= m + 3 {
                    let idx = self.par.base.trunc.idx(m, n);
                    let amp = 2.0e-7; // small PV noise (1/s)
                    qf.data[idx] += Complex::new(
                        amp * (rng.random::<f64>() - 0.5),
                        amp * (rng.random::<f64>() - 0.5),
                    );
                }
            }
        }
        let qg = QgState {
            q_prev: qg_now.clone(),
            q_now: qg_now,
        };

        AtmState {
            qg,
            t,
            q,
            rad: (0..self.n_local())
                .map(|_| foam_physics::RadCache::empty(nl))
                .collect(),
            sim_t: 0.0,
            step_count: 0,
        }
    }

    /// Map a physics level index to the dynamic level advecting it.
    #[inline]
    fn dyn_level_for(&self, k_phys: usize) -> usize {
        (k_phys * self.cfg.dynamics.nlev) / self.cfg.nlev_phys
    }

    /// Equilibrium interface shears (thermal wind) from the local
    /// temperature field — *serial* version used at init (no comm):
    /// computed from the zonal structure only via a local analysis that
    /// is completed lazily on first step. To stay simple and correct we
    /// compute it from the analytic initial profile here.
    fn equilibrium_shear_serial(&self, t: &[Field2]) -> Vec<SpectralField> {
        // Build the full-grid zonal-mean T̄ per dynamic layer from the
        // *initialization formula* (identical on all ranks, no comm).
        let grid = self.grid();
        let nld = self.cfg.dynamics.nlev;
        let nl = self.cfg.nlev_phys;
        let _ = t;
        let st = &self.par.base;
        let mut out = Vec::with_capacity(nld - 1);
        for itf in 0..nld - 1 {
            // Mean T of the physics levels in dynamic layers itf and
            // itf+1, from the analytic initial column.
            let mut field = Field2::zeros(grid.nlon, grid.nlat);
            for j in 0..grid.nlat {
                let col = AtmColumn::standard(nl, Self::t_init(grid.lats[j]));
                let tbar = self.layer_pair_mean(&col.t, itf);
                for i in 0..grid.nlon {
                    field.set(i, j, tbar);
                }
            }
            out.push(self.shear_from_tbar_field(st.analyze(&field), itf));
        }
        out
    }

    /// Mean temperature of the physics levels belonging to dynamic
    /// layers `itf` and `itf + 1` (the air column spanning the interface).
    fn layer_pair_mean(&self, t_col: &[f64], itf: usize) -> f64 {
        let mut sum = 0.0;
        let mut cnt = 0.0;
        for (k, &tv) in t_col.iter().enumerate() {
            let d = self.dyn_level_for(k);
            if d == itf || d == itf + 1 {
                sum += tv;
                cnt += 1.0;
            }
        }
        sum / f64::max(cnt, 1.0)
    }

    /// Convert a spectral T̄ field into an equilibrium interface shear:
    /// Δψ_eq = (R_d Δln p / f₀) · T̄′ (thermal wind), with the global mean
    /// removed (it has no dynamical meaning).
    fn shear_from_tbar_field(&self, mut tbar: SpectralField, itf: usize) -> SpectralField {
        self.shear_from_tbar_into(&mut tbar, itf);
        tbar
    }

    /// In-place form of [`AtmModel::shear_from_tbar_field`].
    fn shear_from_tbar_into(&self, tbar: &mut SpectralField, itf: usize) {
        let nld = self.cfg.dynamics.nlev;
        // Pressure ratio across the interface: equally spaced sigma-like
        // dynamic levels at (k+1/2)/nld of the column.
        let p_of = |d: usize| 2.0e4 + 8.0e4 * (d as f64 + 0.5) / nld as f64;
        let dlnp = (p_of(itf + 1) / p_of(itf)).ln();
        let k00 = self.par.base.trunc.idx(0, 0);
        tbar.data[k00] = Complex::ZERO;
        tbar.scale(R_DRY * dlnp / F0);
    }

    /// Equilibrium shears from the *current* temperature state
    /// (distributed analysis).
    fn equilibrium_shear(&self, comm: &Comm, t: &[Field2]) -> Vec<SpectralField> {
        let nld = self.cfg.dynamics.nlev;
        let nlocal = self.par.n_local_rows();
        let grid = self.grid();
        let mut out = Vec::with_capacity(nld - 1);
        for itf in 0..nld - 1 {
            let mut field = Field2::zeros(grid.nlon, nlocal);
            let mut cnt = 0.0;
            for k in 0..self.cfg.nlev_phys {
                let d = self.dyn_level_for(k);
                if d == itf || d == itf + 1 {
                    field.axpy(1.0, &t[k]);
                    cnt += 1.0;
                }
            }
            field.scale(1.0 / f64::max(cnt, 1.0));
            let spec = self.par.analyze(comm, &field);
            out.push(self.shear_from_tbar_field(spec, itf));
        }
        out
    }

    /// Allocation-free [`AtmModel::equilibrium_shear`]: accumulates the
    /// layer-pair mean temperature in `field` and leaves the shears in
    /// `out`. Bit-identical to the allocating form.
    fn equilibrium_shear_ws(
        &self,
        comm: &Comm,
        t: &[Field2],
        inner: &mut DynWorkspace,
        field: &mut Field2,
        out: &mut [SpectralField],
    ) {
        let nld = self.cfg.dynamics.nlev;
        for itf in 0..nld - 1 {
            field.fill(0.0);
            let mut cnt = 0.0;
            for k in 0..self.cfg.nlev_phys {
                let d = self.dyn_level_for(k);
                if d == itf || d == itf + 1 {
                    field.axpy(1.0, &t[k]);
                    cnt += 1.0;
                }
            }
            field.scale(1.0 / f64::max(cnt, 1.0));
            self.par
                .analyze_into(comm, field, &mut inner.spec, &mut out[itf]);
            self.shear_from_tbar_into(&mut out[itf], itf);
        }
    }

    /// Advance the atmosphere by one step (`cfg.dt` seconds).
    ///
    /// This is the allocate-per-step reference path; hot loops use the
    /// bit-identical [`AtmModel::step_ws`]. The two bodies are kept in
    /// lockstep — change both together (tests pin their equivalence).
    pub fn step(&self, state: &mut AtmState, comm: &Comm, forcing: &AtmForcing) -> AtmExport {
        let grid = self.grid();
        let nlocal_rows = self.par.n_local_rows();
        let nlon = grid.nlon;
        let nl = self.cfg.nlev_phys;
        let dt = self.cfg.dt;
        assert_eq!(forcing.fluxes.len(), self.n_local());

        // --- Dynamics: winds for this step. ---------------------------
        let dyn_scope = foam_telemetry::scope("dynamics");
        let psi = self.core.psi_from_pv(&state.qg.q_now);
        let nld = self.cfg.dynamics.nlev;
        let winds: Vec<(Field2, Field2)> = (0..nld)
            .map(|d| winds_on_rows(&self.par, &psi[d]))
            .collect();
        let (u_low, v_low) = winds[nld - 1].clone();
        drop(dyn_scope);

        // --- Column physics (embarrassingly parallel, load-imbalanced).
        let phys_scope = foam_telemetry::scope("physics");
        let orb = OrbitalState::at_with(state.sim_t, self.phys.cfg.obliquity_deg);
        let eff = self.effective_phys(state.sim_t);
        let refresh = state.step_count == 0 || eff.radiation_due(state.sim_t, dt);
        // Radiation-cache accounting: a refresh step recomputes the full
        // radiative transfer in every local column (a cache miss per
        // column); other steps reuse the cached fluxes.
        let n_cols = self.n_local() as u64;
        if refresh {
            foam_telemetry::count("atm.radiation.cache_misses", n_cols);
        } else {
            foam_telemetry::count("atm.radiation.cache_hits", n_cols);
        }
        let mut precip = Field2::zeros(nlon, nlocal_rows);
        let mut sw_sfc = Field2::zeros(nlon, nlocal_rows);
        let mut lw_down = Field2::zeros(nlon, nlocal_rows);
        let mut cloud = Field2::zeros(nlon, nlocal_rows);
        let mut work = vec![0usize; self.n_local()];
        let mut col = AtmColumn::isothermal(nl, 2000.0, 280.0);
        for jl in 0..nlocal_rows {
            let lat = grid.lats[self.par.j0 + jl];
            for i in 0..nlon {
                let idx = jl * nlon + i;
                // Load the column.
                for k in 0..nl {
                    col.t[k] = state.t[k].get(i, jl);
                    col.q[k] = state.q[k].get(i, jl);
                }
                let sfc = SurfaceState {
                    kind: SurfaceKind::Ocean, // kind is unused with external fluxes
                    t_sfc: forcing.t_sfc[idx],
                    albedo: forcing.albedo[idx],
                    wetness: 1.0,
                };
                let out = eff.step_with_fluxes(
                    &mut col,
                    &sfc,
                    forcing.fluxes[idx],
                    orb,
                    grid.lons[i],
                    lat,
                    &mut state.rad[idx],
                    refresh,
                    dt,
                );
                for k in 0..nl {
                    state.t[k].set(i, jl, col.t[k]);
                    state.q[k].set(i, jl, col.q[k]);
                }
                precip.set(i, jl, out.precip / dt);
                sw_sfc.set(i, jl, out.sw_sfc);
                lw_down.set(i, jl, out.lw_down_sfc);
                cloud.set(i, jl, out.cloud);
                work[idx] = out.iterations;
            }
        }
        drop(phys_scope);

        // --- Tracer advection (T, q at every physics level). ----------
        let dyn_scope = foam_telemetry::scope("dynamics");
        for k in 0..nl {
            let d = self.dyn_level_for(k);
            state.t[k] = advect_grid_tracer(
                &self.par,
                comm,
                &psi[d],
                &state.t[k],
                dt,
                self.cfg.tracer_nu4,
                150.0, // physical floor on T [K]
            );
            state.q[k] = advect_grid_tracer(
                &self.par,
                comm,
                &psi[d],
                &state.q[k],
                dt,
                self.cfg.tracer_nu4,
                0.0,
            );
        }

        // --- QG step forced by the new temperature field. --------------
        let dpsi_eq = self.equilibrium_shear(comm, &state.t);
        let tend = self.core.tendencies(
            &self.par,
            comm,
            &state.qg.q_now,
            &dpsi_eq,
            self.orog_pv.as_ref(),
        );
        if state.step_count == 0 {
            self.core.step_euler(&mut state.qg, &tend, dt);
        } else {
            self.core.step_leapfrog(&mut state.qg, &tend, dt);
        }
        drop(dyn_scope);

        state.sim_t += dt;
        state.step_count += 1;

        AtmExport {
            t_low: state.t[nl - 1].clone(),
            q_low: state.q[nl - 1].clone(),
            u_low,
            v_low,
            precip,
            sw_sfc,
            lw_down,
            cloud,
            work,
        }
    }

    /// Advance the atmosphere by one step without allocating: all
    /// scratch comes from `ws` and the results overwrite `export`.
    /// Bit-identical to [`AtmModel::step`] — both run exactly the same
    /// floating-point operations in the same order; only buffer
    /// ownership differs. Kept in lockstep with [`AtmModel::step`];
    /// change both together.
    ///
    /// ```
    /// use foam_atm::workspace::AtmWorkspace;
    /// use foam_atm::{AtmConfig, AtmModel};
    /// use foam_grid::World;
    /// use foam_mpi::Universe;
    ///
    /// Universe::run(1, |comm| {
    ///     let model = AtmModel::new(AtmConfig::tiny(4), comm);
    ///     let world = World::earthlike();
    ///     let mut a = model.init_state();
    ///     let mut b = model.init_state();
    ///     let mut ws = AtmWorkspace::new(&model);
    ///     let mut export = model.empty_export();
    ///     for _ in 0..3 {
    ///         let forcing = model.standalone_forcing(&a, &world);
    ///         let e = model.step(&mut a, comm, &forcing);
    ///         model.step_ws(&mut b, comm, &forcing, &mut ws, &mut export);
    ///         assert_eq!(e.t_low.as_slice(), export.t_low.as_slice());
    ///         assert_eq!(e.precip.as_slice(), export.precip.as_slice());
    ///     }
    ///     assert_eq!(a.t[0].as_slice(), b.t[0].as_slice());
    ///     assert_eq!(a.qg.q_now[0].data, b.qg.q_now[0].data);
    /// });
    /// ```
    pub fn step_ws(
        &self,
        state: &mut AtmState,
        comm: &Comm,
        forcing: &AtmForcing,
        ws: &mut AtmWorkspace,
        export: &mut AtmExport,
    ) {
        let grid = self.grid();
        let nlocal_rows = self.par.n_local_rows();
        let nlon = grid.nlon;
        let nl = self.cfg.nlev_phys;
        let dt = self.cfg.dt;
        assert_eq!(forcing.fluxes.len(), self.n_local());
        let AtmWorkspace {
            inner,
            psi,
            winds,
            dpsi_eq,
            shear_field,
            tr_out,
            col,
            phys,
        } = ws;

        // --- Dynamics: winds for this step. ---------------------------
        let dyn_scope = foam_telemetry::scope("dynamics");
        self.core.psi_from_pv_into(&state.qg.q_now, psi);
        let nld = self.cfg.dynamics.nlev;
        for d in 0..nld {
            let (u, v) = &mut winds[d];
            winds_on_rows_into(&self.par, &psi[d], inner, u, v);
        }
        export
            .u_low
            .as_mut_slice()
            .copy_from_slice(winds[nld - 1].0.as_slice());
        export
            .v_low
            .as_mut_slice()
            .copy_from_slice(winds[nld - 1].1.as_slice());
        drop(dyn_scope);

        // --- Column physics (embarrassingly parallel, load-imbalanced).
        let phys_scope = foam_telemetry::scope("physics");
        let orb = OrbitalState::at_with(state.sim_t, self.phys.cfg.obliquity_deg);
        let eff = self.effective_phys(state.sim_t);
        let refresh = state.step_count == 0 || eff.radiation_due(state.sim_t, dt);
        let n_cols = self.n_local() as u64;
        if refresh {
            foam_telemetry::count("atm.radiation.cache_misses", n_cols);
        } else {
            foam_telemetry::count("atm.radiation.cache_hits", n_cols);
        }
        for jl in 0..nlocal_rows {
            let lat = grid.lats[self.par.j0 + jl];
            for i in 0..nlon {
                let idx = jl * nlon + i;
                // Load the column.
                for k in 0..nl {
                    col.t[k] = state.t[k].get(i, jl);
                    col.q[k] = state.q[k].get(i, jl);
                }
                let sfc = SurfaceState {
                    kind: SurfaceKind::Ocean, // kind is unused with external fluxes
                    t_sfc: forcing.t_sfc[idx],
                    albedo: forcing.albedo[idx],
                    wetness: 1.0,
                };
                let out = eff.step_with_fluxes_ws(
                    col,
                    &sfc,
                    forcing.fluxes[idx],
                    orb,
                    grid.lons[i],
                    lat,
                    &mut state.rad[idx],
                    refresh,
                    dt,
                    phys,
                );
                for k in 0..nl {
                    state.t[k].set(i, jl, col.t[k]);
                    state.q[k].set(i, jl, col.q[k]);
                }
                export.precip.set(i, jl, out.precip / dt);
                export.sw_sfc.set(i, jl, out.sw_sfc);
                export.lw_down.set(i, jl, out.lw_down_sfc);
                export.cloud.set(i, jl, out.cloud);
                export.work[idx] = out.iterations;
            }
        }
        drop(phys_scope);

        // --- Tracer advection (T, q at every physics level). ----------
        let dyn_scope = foam_telemetry::scope("dynamics");
        for k in 0..nl {
            let d = self.dyn_level_for(k);
            advect_grid_tracer_ws(
                &self.par,
                comm,
                &psi[d],
                &state.t[k],
                dt,
                self.cfg.tracer_nu4,
                150.0, // physical floor on T [K]
                inner,
                tr_out,
            );
            std::mem::swap(&mut state.t[k], tr_out);
            advect_grid_tracer_ws(
                &self.par,
                comm,
                &psi[d],
                &state.q[k],
                dt,
                self.cfg.tracer_nu4,
                0.0,
                inner,
                tr_out,
            );
            std::mem::swap(&mut state.q[k], tr_out);
        }

        // --- QG step forced by the new temperature field. --------------
        self.equilibrium_shear_ws(comm, &state.t, inner, shear_field, dpsi_eq);
        self.core.tendencies_ws(
            &self.par,
            comm,
            &state.qg.q_now,
            dpsi_eq,
            self.orog_pv.as_ref(),
            inner,
        );
        if state.step_count == 0 {
            self.core.step_euler_ws(&mut state.qg, dt, inner);
        } else {
            self.core.step_leapfrog_ws(&mut state.qg, dt, inner);
        }
        drop(dyn_scope);

        state.sim_t += dt;
        state.step_count += 1;

        export
            .t_low
            .as_mut_slice()
            .copy_from_slice(state.t[nl - 1].as_slice());
        export
            .q_low
            .as_mut_slice()
            .copy_from_slice(state.q[nl - 1].as_slice());
    }

    /// An export-shaped zero buffer for reuse with
    /// [`AtmModel::step_ws`] (every field is fully overwritten by the
    /// step).
    pub fn empty_export(&self) -> AtmExport {
        let grid = self.grid();
        let z = || Field2::zeros(grid.nlon, self.par.n_local_rows());
        AtmExport {
            t_low: z(),
            q_low: z(),
            u_low: z(),
            v_low: z(),
            precip: z(),
            sw_sfc: z(),
            lw_down: z(),
            cloud: z(),
            work: vec![0; self.n_local()],
        }
    }

    /// Export fields from a state without stepping — used to prime the
    /// coupler before the first atmosphere step.
    pub fn initial_export(&self, state: &AtmState) -> AtmExport {
        let nl = self.cfg.nlev_phys;
        let psi = self.core.psi_from_pv(&state.qg.q_now);
        let (u_low, v_low) = winds_on_rows(&self.par, &psi[self.cfg.dynamics.nlev - 1]);
        let grid = self.grid();
        let z = Field2::zeros(grid.nlon, self.par.n_local_rows());
        AtmExport {
            t_low: state.t[nl - 1].clone(),
            q_low: state.q[nl - 1].clone(),
            u_low,
            v_low,
            precip: z.clone(),
            sw_sfc: Field2::filled(grid.nlon, self.par.n_local_rows(), 160.0),
            lw_down: Field2::filled(grid.nlon, self.par.n_local_rows(), 320.0),
            cloud: z.clone(),
            work: vec![0; self.n_local()],
        }
    }

    /// Standalone forcing for running the atmosphere without a coupler:
    /// bulk fluxes over a prescribed climatological SST (land treated as
    /// ocean) — used by spin-up tests and examples.
    pub fn standalone_forcing(&self, state: &AtmState, world: &foam_grid::World) -> AtmForcing {
        let grid = self.grid();
        let nl = self.cfg.nlev_phys;
        let psi = self.core.psi_from_pv(&state.qg.q_now);
        let (u, v) = winds_on_rows(&self.par, &psi[self.cfg.dynamics.nlev - 1]);
        let mut fluxes = Vec::with_capacity(self.n_local());
        let mut t_sfc = Vec::with_capacity(self.n_local());
        let mut albedo = Vec::with_capacity(self.n_local());
        let mut col = AtmColumn::isothermal(nl, 2000.0, 280.0);
        for jl in 0..self.par.n_local_rows() {
            let lat = grid.lats[self.par.j0 + jl];
            for i in 0..grid.nlon {
                for k in 0..nl {
                    col.t[k] = state.t[k].get(i, jl);
                    col.q[k] = state.q[k].get(i, jl);
                }
                let sst_c = world.sst_climatology(grid.lons[i], lat);
                let sfc = SurfaceState::open_ocean(sst_c + 273.15);
                let f = self
                    .phys
                    .surface_fluxes(&col, &sfc, (u.get(i, jl), v.get(i, jl)));
                fluxes.push(f);
                t_sfc.push(sfc.t_sfc);
                albedo.push(sfc.albedo);
            }
        }
        AtmForcing {
            fluxes,
            t_sfc,
            albedo,
        }
    }

    /// Total kinetic-energy-like diagnostic: Σ over dynamic levels of the
    /// mean-square rotational wind (∝ Σ L |ψ|²) — used by tests to verify
    /// that baroclinic eddies grow and then equilibrate.
    pub fn eddy_energy(&self, state: &AtmState) -> f64 {
        let psi = self.core.psi_from_pv(&state.qg.q_now);
        let mut e = 0.0;
        for p in &psi {
            let grad = p.laplacian();
            // ∫ |∇ψ|² = −∫ ψ∇²ψ: spectrally Σ L |ψ|².
            for (m, n) in p.trunc.pairs() {
                if m == 0 {
                    continue; // zonal-mean flow excluded: *eddy* energy
                }
                let idx = p.trunc.idx(m, n);
                e += -(p.data[idx].re * grad.data[idx].re + p.data[idx].im * grad.data[idx].im)
                    * 2.0;
            }
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foam_grid::World;
    use foam_mpi::Universe;

    #[test]
    fn init_state_is_balanced_and_identical_across_ranks() {
        let out = Universe::run(3, |comm| {
            let model = AtmModel::new(AtmConfig::tiny(11), comm);
            let state = model.init_state();
            // Return a digest of the (replicated) spectral state.
            state.qg.q_now[0]
                .data
                .iter()
                .map(|c| c.re + 2.0 * c.im)
                .sum::<f64>()
        });
        for r in 1..3 {
            assert!(
                (out.results[r] - out.results[0]).abs() < 1e-14,
                "rank {r} differs: {} vs {}",
                out.results[r],
                out.results[0]
            );
        }
    }

    #[test]
    fn one_day_standalone_run_stays_physical() {
        Universe::run(2, |comm| {
            let model = AtmModel::new(AtmConfig::tiny(3), comm);
            let world = World::earthlike();
            let mut state = model.init_state();
            for _ in 0..48 {
                let forcing = model.standalone_forcing(&state, &world);
                let export = model.step(&mut state, comm, &forcing);
                assert!(export.t_low.all_finite());
                assert!(export.q_low.all_finite());
                for k in 0..model.cfg.nlev_phys {
                    for &tv in state.t[k].as_slice() {
                        assert!((140.0..360.0).contains(&tv), "T = {tv}");
                    }
                    for &qv in state.q[k].as_slice() {
                        assert!((0.0..0.1).contains(&qv), "q = {qv}");
                    }
                }
            }
            // Winds should be alive (jets spun up) but bounded.
            let forcing = model.standalone_forcing(&state, &world);
            let export = model.step(&mut state, comm, &forcing);
            let umax = export.u_low.max_abs();
            assert!(umax > 0.5, "no circulation developed: umax = {umax}");
            assert!(umax < 150.0, "runaway winds: umax = {umax}");
        });
    }

    #[test]
    fn different_seeds_diverge_chaotically() {
        // Two runs differing only in the initial perturbation seed must
        // decorrelate — the weather is chaotic, which is what makes
        // climate (not weather) the object of study.
        let digest = |seed: u64| {
            let out = Universe::run(1, move |comm| {
                let model = AtmModel::new(AtmConfig::tiny(seed), comm);
                let world = World::earthlike();
                let mut state = model.init_state();
                for _ in 0..96 {
                    let forcing = model.standalone_forcing(&state, &world);
                    model.step(&mut state, comm, &forcing);
                }
                model.eddy_energy(&state)
            });
            out.results[0]
        };
        let a = digest(1);
        let b = digest(2);
        assert!(a.is_finite() && b.is_finite());
        assert!(
            (a - b).abs() > 1e-12 * a.abs().max(1e-30),
            "seeds produced identical energies {a}"
        );
    }

    #[test]
    fn radiation_refresh_happens_twice_daily_in_model() {
        Universe::run(1, |comm| {
            let model = AtmModel::new(AtmConfig::tiny(5), comm);
            let mut refreshes = 0;
            let dt = model.cfg.dt;
            for s in 0..48u64 {
                let t = s as f64 * dt;
                if s == 0 || model.phys.radiation_due(t, dt) {
                    refreshes += 1;
                }
            }
            assert_eq!(refreshes, 3); // initial + 2 boundary crossings
        });
    }

    #[test]
    fn step_ws_is_bit_identical_to_step_across_ranks() {
        // The workspace path must reproduce the allocate-per-step path
        // exactly — every export field and every piece of state — on
        // both serial and decomposed runs.
        for p in [1usize, 2] {
            Universe::run(p, |comm| {
                let model = AtmModel::new(AtmConfig::tiny(13), comm);
                let world = World::earthlike();
                let mut a = model.init_state();
                let mut b = model.init_state();
                let mut ws = AtmWorkspace::new(&model);
                let mut export = model.empty_export();
                for _ in 0..6 {
                    let forcing = model.standalone_forcing(&a, &world);
                    let e = model.step(&mut a, comm, &forcing);
                    model.step_ws(&mut b, comm, &forcing, &mut ws, &mut export);
                    assert_eq!(e.t_low.as_slice(), export.t_low.as_slice());
                    assert_eq!(e.q_low.as_slice(), export.q_low.as_slice());
                    assert_eq!(e.u_low.as_slice(), export.u_low.as_slice());
                    assert_eq!(e.v_low.as_slice(), export.v_low.as_slice());
                    assert_eq!(e.precip.as_slice(), export.precip.as_slice());
                    assert_eq!(e.sw_sfc.as_slice(), export.sw_sfc.as_slice());
                    assert_eq!(e.lw_down.as_slice(), export.lw_down.as_slice());
                    assert_eq!(e.cloud.as_slice(), export.cloud.as_slice());
                    assert_eq!(e.work, export.work);
                }
                for k in 0..model.cfg.nlev_phys {
                    assert_eq!(a.t[k].as_slice(), b.t[k].as_slice());
                    assert_eq!(a.q[k].as_slice(), b.q[k].as_slice());
                }
                for k in 0..model.cfg.dynamics.nlev {
                    assert_eq!(a.qg.q_now[k].data, b.qg.q_now[k].data);
                    assert_eq!(a.qg.q_prev[k].data, b.qg.q_prev[k].data);
                }
            });
        }
    }

    #[test]
    fn work_field_shows_horizontal_variation() {
        Universe::run(1, |comm| {
            let model = AtmModel::new(AtmConfig::tiny(9), comm);
            let world = World::earthlike();
            let mut state = model.init_state();
            let mut last = Vec::new();
            for _ in 0..8 {
                let forcing = model.standalone_forcing(&state, &world);
                let export = model.step(&mut state, comm, &forcing);
                last = export.work;
            }
            let min = *last.iter().min().unwrap();
            let max = *last.iter().max().unwrap();
            assert!(
                max > min,
                "physics work should vary across columns (load imbalance)"
            );
        });
    }
}
