//! `foam-atm` — the FOAM atmosphere component.
//!
//! The original is PCCM2: NCAR CCM2 with CCM3 moist physics, parallelized
//! by latitude decomposition, run at R15 (48 × 40 × 18) with a 30-minute
//! step. The paper treats it as an imported black box and cares about its
//! *computational* structure: spectral transforms needing global
//! communication, expensive column physics needing none, radiation
//! recomputed twice a day, cloud-dependent load imbalance.
//!
//! Our substitution (DESIGN.md §4) keeps that skeleton exactly and swaps
//! the primitive-equation dynamical core for a multi-level
//! quasi-geostrophic potential-vorticity core in the tradition of
//! Marshall & Molteni (1993) — a standard intermediate-complexity global
//! spectral model with genuinely chaotic midlatitude dynamics:
//!
//! * [`dynamics`] — L-level QG PV inversion and tendencies, leapfrog +
//!   Robert–Asselin time stepping, spectral hyperdiffusion, Ekman drag,
//!   thermal-wind relaxation toward the physics temperature field (how
//!   heating steers the circulation),
//! * [`tracers`] — spectral advection of the 18-level grid-point
//!   temperature and moisture fields by the QG winds,
//! * [`model`] — [`AtmModel`]: the latitude-decomposed SPMD component
//!   combining dynamics, tracers and `foam-physics` columns, exchanging
//!   surface fields with the coupler,
//! * [`workspace`] — [`AtmWorkspace`]: pre-allocated scratch making the
//!   whole step allocation-free via [`AtmModel::step_ws`], bit-identical
//!   to the allocate-per-step [`AtmModel::step`] (the zero-churn rule;
//!   see PERFORMANCE.md).

pub mod dynamics;
pub mod model;
pub mod tracers;
pub mod workspace;

pub use dynamics::{QgConfig, QgState};
pub use model::{AtmConfig, AtmExport, AtmForcing, AtmModel, AtmState};
pub use workspace::{AtmWorkspace, DynWorkspace};
