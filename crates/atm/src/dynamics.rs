//! The L-level quasi-geostrophic spectral dynamical core.
//!
//! Prognostic variable: anomaly potential vorticity q_i (planetary
//! vorticity handled analytically via the β term) at `nlev` dynamic
//! levels. PV and streamfunction are linked per spectral coefficient by
//! a small symmetric matrix (Laplacian + interface stretching), inverted
//! exactly; tendencies are
//!
//!   ∂q_i/∂t = −J(ψ_i, q_i) − β-term − Ekman drag (bottom level)
//!             − interface relaxation toward the thermal-wind shear
//!               implied by the physics temperature field,
//!
//! with leapfrog + Robert–Asselin time stepping and implicit ∇⁴
//! hyperdiffusion, the standard configuration for R15-class spectral
//! models (Williamson et al. give the diffusion guidance the paper
//! cites).

use foam_ckpt::{ByteReader, CkptError, Codec};
use foam_grid::constants::{EARTH_RADIUS, OMEGA};
use foam_grid::Field2;
use foam_mpi::Comm;
use foam_spectral::{Complex, ParTransform, SpectralField, SpectralWorkspace, Truncation};

use crate::workspace::DynWorkspace;

/// Dynamical-core configuration.
#[derive(Debug, Clone)]
pub struct QgConfig {
    /// Number of dynamic levels (Marshall–Molteni uses 3: 200/500/800 hPa).
    pub nlev: usize,
    /// Rossby deformation radii of the `nlev − 1` interfaces \[m\].
    pub rossby_radii: Vec<f64>,
    /// Ekman spin-down time on the bottom level \[s\].
    pub tau_ekman: f64,
    /// Relaxation time of interface shear toward the thermal-wind
    /// equilibrium from the physics temperature field \[s\].
    pub tau_thermal: f64,
    /// ∇⁴ hyperdiffusion coefficient \[m⁴/s\].
    pub nu_hyper: f64,
    /// Robert–Asselin filter strength.
    pub robert: f64,
}

impl Default for QgConfig {
    fn default() -> Self {
        QgConfig {
            nlev: 3,
            rossby_radii: vec![700.0e3, 450.0e3],
            tau_ekman: 3.0 * 86_400.0,
            tau_thermal: 20.0 * 86_400.0,
            // Sized for R15 per the Williamson et al. guidance scale.
            nu_hyper: 1.0e16,
            robert: 0.02,
        }
    }
}

/// Leapfrog state: PV at the previous and current time levels.
#[derive(Debug, Clone)]
pub struct QgState {
    pub q_prev: Vec<SpectralField>,
    pub q_now: Vec<SpectralField>,
}

impl QgState {
    pub fn zeros(trunc: Truncation, nlev: usize) -> Self {
        QgState {
            q_prev: (0..nlev).map(|_| SpectralField::zeros(trunc)).collect(),
            q_now: (0..nlev).map(|_| SpectralField::zeros(trunc)).collect(),
        }
    }
}

impl Codec for QgState {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.q_prev.encode(buf);
        self.q_now.encode(buf);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        let q_prev = Vec::<SpectralField>::decode(r)?;
        let q_now = Vec::<SpectralField>::decode(r)?;
        if q_prev.len() != q_now.len() {
            return Err(CkptError::Corrupt(format!(
                "QgState level mismatch: {} prev vs {} now",
                q_prev.len(),
                q_now.len()
            )));
        }
        Ok(QgState { q_prev, q_now })
    }
}

/// The core: precomputed per-degree inversion matrices.
pub struct QgCore {
    pub cfg: QgConfig,
    pub trunc: Truncation,
    /// Forward matrices A(n) (ψ → q), row-major nlev × nlev, per degree n.
    fwd: Vec<Vec<f64>>,
    /// Inverse matrices A(n)⁻¹ (q → ψ); identity-sized zeros for n = 0
    /// (the global-mean ψ is gauge-fixed to zero).
    inv: Vec<Vec<f64>>,
}

impl QgCore {
    pub fn new(cfg: QgConfig, trunc: Truncation) -> Self {
        assert_eq!(cfg.rossby_radii.len(), cfg.nlev - 1);
        let nl = cfg.nlev;
        let a2 = EARTH_RADIUS * EARTH_RADIUS;
        let r: Vec<f64> = cfg.rossby_radii.iter().map(|&rd| 1.0 / (rd * rd)).collect();
        let n_max = trunc.n_max_overall();
        let mut fwd = Vec::with_capacity(n_max + 1);
        let mut inv = Vec::with_capacity(n_max + 1);
        for n in 0..=n_max {
            let lap = -((n * (n + 1)) as f64) / a2;
            let mut a = vec![0.0; nl * nl];
            for i in 0..nl {
                a[i * nl + i] = lap;
            }
            for (k, &rk) in r.iter().enumerate() {
                a[k * nl + k] -= rk;
                a[k * nl + (k + 1)] += rk;
                a[(k + 1) * nl + (k + 1)] -= rk;
                a[(k + 1) * nl + k] += rk;
            }
            let ainv = if n == 0 {
                vec![0.0; nl * nl]
            } else {
                invert(&a, nl)
            };
            fwd.push(a);
            inv.push(ainv);
        }
        QgCore {
            cfg,
            trunc,
            fwd,
            inv,
        }
    }

    /// ψ from anomaly PV, coefficient by coefficient.
    pub fn psi_from_pv(&self, q: &[SpectralField]) -> Vec<SpectralField> {
        self.apply_per_n(q, &self.inv)
    }

    /// Allocation-free [`QgCore::psi_from_pv`]: overwrites every
    /// coefficient of the `nlev` fields in `out`. Bit-identical to the
    /// allocating form.
    pub fn psi_from_pv_into(&self, q: &[SpectralField], out: &mut [SpectralField]) {
        self.apply_per_n_into(q, &self.inv, out)
    }

    /// Anomaly PV from ψ.
    pub fn pv_from_psi(&self, psi: &[SpectralField]) -> Vec<SpectralField> {
        self.apply_per_n(psi, &self.fwd)
    }

    fn apply_per_n(&self, x: &[SpectralField], mats: &[Vec<f64>]) -> Vec<SpectralField> {
        let mut out: Vec<SpectralField> = (0..self.cfg.nlev)
            .map(|_| SpectralField::zeros(self.trunc))
            .collect();
        self.apply_per_n_into(x, mats, &mut out);
        out
    }

    fn apply_per_n_into(&self, x: &[SpectralField], mats: &[Vec<f64>], out: &mut [SpectralField]) {
        let nl = self.cfg.nlev;
        assert_eq!(x.len(), nl);
        assert_eq!(out.len(), nl);
        for (m, n) in self.trunc.pairs() {
            let k = self.trunc.idx(m, n);
            let mat = &mats[n];
            for i in 0..nl {
                let mut acc = Complex::ZERO;
                for (j, xi) in x.iter().enumerate() {
                    acc += xi.data[k].scale(mat[i * nl + j]);
                }
                out[i].data[k] = acc;
            }
        }
    }

    /// PV tendencies. `dpsi_eq[k]` is the equilibrium interface shear
    /// (ψ_k − ψ_{k+1})_eq, in spectral space, supplied by the model layer
    /// from the physics temperature field (thermal wind). Requires a
    /// distributed transform + communicator for the Jacobians.
    /// `orog_pv` is the orographic PV f·h/H as a spectral field; flow
    /// over it forces the bottom level (stationary waves), the standard
    /// QG treatment (Marshall–Molteni's f₀ h/H term).
    pub fn tendencies(
        &self,
        par: &ParTransform,
        comm: &Comm,
        state_q: &[SpectralField],
        dpsi_eq: &[SpectralField],
        orog_pv: Option<&SpectralField>,
    ) -> Vec<SpectralField> {
        let nl = self.cfg.nlev;
        let psi = self.psi_from_pv(state_q);
        let mut tend: Vec<SpectralField> = (0..nl)
            .map(|k| {
                // Nonlinear advection: −J(ψ, q), via the transform method.
                let mut t = jacobian(par, comm, &psi[k], &state_q[k]);
                t.scale(-1.0);
                t
            })
            .collect();

        let a2 = EARTH_RADIUS * EARTH_RADIUS;
        for k in 0..nl {
            // β term: −(2Ω/a²) ∂ψ/∂λ, spectral multiply by i m.
            for (m, n) in self.trunc.pairs() {
                let idx = self.trunc.idx(m, n);
                let beta = psi[k].data[idx]
                    .mul_i()
                    .scale(-(2.0 * OMEGA / a2) * m as f64);
                tend[k].data[idx] += beta;
            }
        }
        // Orographic forcing of the bottom level: −J(ψ_b, f h/H).
        if let Some(h) = orog_pv {
            let mut j = jacobian(par, comm, &psi[nl - 1], h);
            j.scale(-1.0);
            for (m, n) in self.trunc.pairs() {
                let idx = self.trunc.idx(m, n);
                tend[nl - 1].data[idx] += j.data[idx];
            }
        }
        // Ekman drag on the bottom level: −∇²ψ/τ_E.
        let mut drag = psi[nl - 1].laplacian();
        drag.scale(-1.0 / self.cfg.tau_ekman);
        for (m, n) in self.trunc.pairs() {
            let idx = self.trunc.idx(m, n);
            tend[nl - 1].data[idx] += drag.data[idx];
        }
        // Interface thermal relaxation: drive the shear toward dpsi_eq.
        let r: Vec<f64> = self
            .cfg
            .rossby_radii
            .iter()
            .map(|&rd| 1.0 / (rd * rd))
            .collect();
        for k in 0..nl - 1 {
            for (m, n) in self.trunc.pairs() {
                let idx = self.trunc.idx(m, n);
                let shear = psi[k].data[idx] - psi[k + 1].data[idx];
                let dev = shear - dpsi_eq[k].data[idx];
                let f = dev.scale(r[k] / self.cfg.tau_thermal);
                // To raise the shear toward equilibrium, *remove*
                // stretching PV above the interface and add it below:
                // q_k ⊃ −r·Δψ, so dq_k = +r·dev/τ drives dΔψ = −dev/τ.
                tend[k].data[idx] += f;
                tend[k + 1].data[idx] += f.scale(-1.0);
            }
        }
        tend
    }

    /// Allocation-free [`QgCore::tendencies`]: leaves the tendencies in
    /// `dw.tend` for [`QgCore::step_leapfrog_ws`] /
    /// [`QgCore::step_euler_ws`]. Performs exactly the same operations
    /// in the same order as the allocating form — bit-identical, pinned
    /// by the [`DynWorkspace`] doctest. Kept in lockstep with
    /// [`QgCore::tendencies`]; change both together.
    pub fn tendencies_ws(
        &self,
        par: &ParTransform,
        comm: &Comm,
        state_q: &[SpectralField],
        dpsi_eq: &[SpectralField],
        orog_pv: Option<&SpectralField>,
        dw: &mut DynWorkspace,
    ) {
        let nl = self.cfg.nlev;
        let DynWorkspace {
            spec,
            psi,
            tend,
            jac,
            drag,
            ga,
            gb,
            gc,
            gd,
            gj,
            rossby_r,
            ..
        } = dw;
        self.psi_from_pv_into(state_q, psi);
        for k in 0..nl {
            // Nonlinear advection: −J(ψ, q), via the transform method.
            jacobian_into(
                par,
                comm,
                &psi[k],
                &state_q[k],
                spec,
                ga,
                gb,
                gc,
                gd,
                gj,
                &mut tend[k],
            );
            tend[k].scale(-1.0);
        }

        let a2 = EARTH_RADIUS * EARTH_RADIUS;
        for k in 0..nl {
            // β term: −(2Ω/a²) ∂ψ/∂λ, spectral multiply by i m.
            for (m, n) in self.trunc.pairs() {
                let idx = self.trunc.idx(m, n);
                let beta = psi[k].data[idx]
                    .mul_i()
                    .scale(-(2.0 * OMEGA / a2) * m as f64);
                tend[k].data[idx] += beta;
            }
        }
        // Orographic forcing of the bottom level: −J(ψ_b, f h/H).
        if let Some(h) = orog_pv {
            jacobian_into(par, comm, &psi[nl - 1], h, spec, ga, gb, gc, gd, gj, jac);
            jac.scale(-1.0);
            for (m, n) in self.trunc.pairs() {
                let idx = self.trunc.idx(m, n);
                tend[nl - 1].data[idx] += jac.data[idx];
            }
        }
        // Ekman drag on the bottom level: −∇²ψ/τ_E.
        psi[nl - 1].laplacian_into(drag);
        drag.scale(-1.0 / self.cfg.tau_ekman);
        for (m, n) in self.trunc.pairs() {
            let idx = self.trunc.idx(m, n);
            tend[nl - 1].data[idx] += drag.data[idx];
        }
        // Interface thermal relaxation: drive the shear toward dpsi_eq.
        rossby_r.clear();
        rossby_r.extend(self.cfg.rossby_radii.iter().map(|&rd| 1.0 / (rd * rd)));
        for k in 0..nl - 1 {
            for (m, n) in self.trunc.pairs() {
                let idx = self.trunc.idx(m, n);
                let shear = psi[k].data[idx] - psi[k + 1].data[idx];
                let dev = shear - dpsi_eq[k].data[idx];
                let f = dev.scale(rossby_r[k] / self.cfg.tau_thermal);
                tend[k].data[idx] += f;
                tend[k + 1].data[idx] += f.scale(-1.0);
            }
        }
    }

    /// One leapfrog step with Robert–Asselin filtering and implicit
    /// hyperdiffusion. Advances `state` in place by `dt`.
    pub fn step_leapfrog(&self, state: &mut QgState, tend: &[SpectralField], dt: f64) {
        let nl = self.cfg.nlev;
        for k in 0..nl {
            let mut q_next = state.q_prev[k].clone();
            q_next.axpy(2.0 * dt, &tend[k]);
            q_next.apply_hyperdiffusion(self.cfg.nu_hyper, 2.0 * dt);
            // Robert–Asselin: filter the middle time level.
            let mut filtered = state.q_now[k].clone();
            for i in 0..filtered.data.len() {
                filtered.data[i] += (state.q_prev[k].data[i] + q_next.data[i]
                    - state.q_now[k].data[i].scale(2.0))
                .scale(self.cfg.robert);
            }
            state.q_prev[k] = filtered;
            state.q_now[k] = q_next;
        }
    }

    /// Forward-Euler bootstrap step (first step of a leapfrog run).
    pub fn step_euler(&self, state: &mut QgState, tend: &[SpectralField], dt: f64) {
        let nl = self.cfg.nlev;
        for k in 0..nl {
            state.q_prev[k] = state.q_now[k].clone();
            state.q_now[k].axpy(dt, &tend[k]);
            state.q_now[k].apply_hyperdiffusion(self.cfg.nu_hyper, dt);
        }
    }

    /// Allocation-free [`QgCore::step_leapfrog`] consuming the
    /// tendencies left in `dw` by [`QgCore::tendencies_ws`]. The new
    /// time levels are built in workspace scratch and swapped into the
    /// state — same arithmetic, zero churn, bit-identical.
    pub fn step_leapfrog_ws(&self, state: &mut QgState, dt: f64, dw: &mut DynWorkspace) {
        let nl = self.cfg.nlev;
        let DynWorkspace {
            tend,
            q_next,
            filtered,
            ..
        } = dw;
        for k in 0..nl {
            q_next.copy_from(&state.q_prev[k]);
            q_next.axpy(2.0 * dt, &tend[k]);
            q_next.apply_hyperdiffusion(self.cfg.nu_hyper, 2.0 * dt);
            // Robert–Asselin: filter the middle time level.
            filtered.copy_from(&state.q_now[k]);
            for i in 0..filtered.data.len() {
                filtered.data[i] += (state.q_prev[k].data[i] + q_next.data[i]
                    - state.q_now[k].data[i].scale(2.0))
                .scale(self.cfg.robert);
            }
            std::mem::swap(&mut state.q_prev[k], filtered);
            std::mem::swap(&mut state.q_now[k], q_next);
        }
    }

    /// Allocation-free [`QgCore::step_euler`] consuming the tendencies
    /// left in `dw` by [`QgCore::tendencies_ws`].
    pub fn step_euler_ws(&self, state: &mut QgState, dt: f64, dw: &mut DynWorkspace) {
        let nl = self.cfg.nlev;
        for k in 0..nl {
            state.q_prev[k].copy_from(&state.q_now[k]);
            state.q_now[k].axpy(dt, &dw.tend[k]);
            state.q_now[k].apply_hyperdiffusion(self.cfg.nu_hyper, dt);
        }
    }
}

/// Spherical Jacobian J(a, b) = (1/a²)(∂a/∂λ ∂b/∂μ − ∂a/∂μ ∂b/∂λ),
/// evaluated by the transform method on this rank's rows and re-analyzed
/// (the distributed global-sum step).
pub fn jacobian(
    par: &ParTransform,
    comm: &Comm,
    a: &SpectralField,
    b: &SpectralField,
) -> SpectralField {
    let a_lam = par.synthesize_dlambda(a);
    let a_cmu = par.synthesize_cosgrad(a);
    let b_lam = par.synthesize_dlambda(b);
    let b_cmu = par.synthesize_cosgrad(b);
    let grid = &par.base.grid;
    let a2 = EARTH_RADIUS * EARTH_RADIUS;
    let mut j = Field2::zeros(grid.nlon, par.n_local_rows());
    for jl in 0..par.n_local_rows() {
        let mu = grid.mu[par.j0 + jl];
        let fac = 1.0 / (a2 * (1.0 - mu * mu));
        for i in 0..grid.nlon {
            let v =
                (a_lam.get(i, jl) * b_cmu.get(i, jl) - a_cmu.get(i, jl) * b_lam.get(i, jl)) * fac;
            j.set(i, jl, v);
        }
    }
    par.analyze(comm, &j)
}

/// Allocation-free [`jacobian`]: the four synthesis slabs, the grid
/// product field and the transform scratch are caller-provided (all
/// fully overwritten). Bit-identical to the allocating form.
#[allow(clippy::too_many_arguments)]
pub(crate) fn jacobian_into(
    par: &ParTransform,
    comm: &Comm,
    a: &SpectralField,
    b: &SpectralField,
    spec: &mut SpectralWorkspace,
    a_lam: &mut Field2,
    a_cmu: &mut Field2,
    b_lam: &mut Field2,
    b_cmu: &mut Field2,
    jgrid: &mut Field2,
    out: &mut SpectralField,
) {
    par.synthesize_dlambda_into(a, spec, a_lam);
    par.synthesize_cosgrad_into(a, spec, a_cmu);
    par.synthesize_dlambda_into(b, spec, b_lam);
    par.synthesize_cosgrad_into(b, spec, b_cmu);
    let grid = &par.base.grid;
    let a2 = EARTH_RADIUS * EARTH_RADIUS;
    for jl in 0..par.n_local_rows() {
        let mu = grid.mu[par.j0 + jl];
        let fac = 1.0 / (a2 * (1.0 - mu * mu));
        for i in 0..grid.nlon {
            let v =
                (a_lam.get(i, jl) * b_cmu.get(i, jl) - a_cmu.get(i, jl) * b_lam.get(i, jl)) * fac;
            jgrid.set(i, jl, v);
        }
    }
    par.analyze_into(comm, jgrid, spec, out);
}

/// Invert a dense `n × n` matrix by Gauss–Jordan with partial pivoting.
fn invert(a: &[f64], n: usize) -> Vec<f64> {
    let mut m = a.to_vec();
    let mut inv = vec![0.0; n * n];
    for i in 0..n {
        inv[i * n + i] = 1.0;
    }
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for row in col + 1..n {
            if m[row * n + col].abs() > m[piv * n + col].abs() {
                piv = row;
            }
        }
        assert!(m[piv * n + col].abs() > 1e-300, "singular PV matrix");
        if piv != col {
            for j in 0..n {
                m.swap(col * n + j, piv * n + j);
                inv.swap(col * n + j, piv * n + j);
            }
        }
        let d = m[col * n + col];
        for j in 0..n {
            m[col * n + j] /= d;
            inv[col * n + j] /= d;
        }
        for row in 0..n {
            if row != col {
                let f = m[row * n + col];
                if f != 0.0 {
                    for j in 0..n {
                        m[row * n + j] -= f * m[col * n + j];
                        inv[row * n + j] -= f * inv[col * n + j];
                    }
                }
            }
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use foam_grid::AtmGrid;
    use foam_mpi::Universe;
    use foam_spectral::SphericalTransform;

    fn core() -> QgCore {
        QgCore::new(QgConfig::default(), Truncation::rhomboidal(5))
    }

    fn par(comm: &Comm) -> ParTransform {
        ParTransform::new(
            SphericalTransform::new(AtmGrid::new(24, 16), Truncation::rhomboidal(5)),
            comm,
        )
    }

    #[test]
    fn invert_matches_identity() {
        let a = vec![2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0];
        let ai = invert(&a, 3);
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += a[i * 3 + k] * ai[k * 3 + j];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((s - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn inversion_roundtrip() {
        let c = core();
        let mut q: Vec<SpectralField> = (0..3).map(|_| SpectralField::zeros(c.trunc)).collect();
        q[0].set(2, 3, Complex::new(1.0, 0.5));
        q[1].set(1, 4, Complex::new(-0.7, 0.0));
        q[2].set(0, 2, Complex::new(0.3, 0.0));
        let psi = c.psi_from_pv(&q);
        let back = c.pv_from_psi(&psi);
        for k in 0..3 {
            for (m, n) in c.trunc.pairs() {
                if n == 0 {
                    continue; // gauge-fixed
                }
                let d = back[k].get(m, n) - q[k].get(m, n);
                assert!(d.abs() < 1e-12, "level {k} ({m},{n}): {d:?}");
            }
        }
    }

    #[test]
    fn barotropic_mode_decouples_from_stretching() {
        // Equal ψ at all levels ⇒ q_i = ∇²ψ (no stretching terms).
        let c = core();
        let mut psi: Vec<SpectralField> = (0..3).map(|_| SpectralField::zeros(c.trunc)).collect();
        for p in psi.iter_mut() {
            p.set(3, 5, Complex::new(1.0, 2.0));
        }
        let q = c.pv_from_psi(&psi);
        let lap = psi[0].laplacian();
        for k in 0..3 {
            let d = q[k].get(3, 5) - lap.get(3, 5);
            assert!(d.abs() < 1e-20, "level {k}");
        }
    }

    #[test]
    fn rossby_wave_retrogresses_at_haurwitz_speed() {
        // Linear test: a single barotropic harmonic, tiny amplitude so
        // J(ψ,q) ~ O(amp²) is negligible; the β term should rotate the
        // phase westward at ω = −2Ωm/(n(n+1)).
        let out = Universe::run(1, |comm| {
            let par = par(comm);
            let cfg = QgConfig {
                tau_ekman: 1e30, // disable drag
                tau_thermal: 1e30,
                nu_hyper: 0.0,
                ..Default::default()
            };
            let c = QgCore::new(cfg, par.base.trunc);
            let (m, n) = (2usize, 4usize);
            let amp = 1.0e-4; // essentially linear
            let mut psi: Vec<SpectralField> =
                (0..3).map(|_| SpectralField::zeros(c.trunc)).collect();
            for p in psi.iter_mut() {
                p.set(m, n, Complex::new(amp, 0.0));
            }
            let mut state = QgState {
                q_prev: c.pv_from_psi(&psi),
                q_now: c.pv_from_psi(&psi),
            };
            let dpsi_eq: Vec<SpectralField> =
                (0..2).map(|_| SpectralField::zeros(c.trunc)).collect();
            let dt = 1800.0;
            let steps = 48;
            for s in 0..steps {
                let tend = c.tendencies(&par, comm, &state.q_now, &dpsi_eq, None);
                if s == 0 {
                    c.step_euler(&mut state, &tend, dt);
                } else {
                    c.step_leapfrog(&mut state, &tend, dt);
                }
            }
            let psi_end = c.psi_from_pv(&state.q_now);
            let z = psi_end[1].get(m, n);
            // Phase angle after `steps·dt`.
            let measured = z.im.atan2(z.re);
            let omega = -2.0 * OMEGA * m as f64 / ((n * (n + 1)) as f64);
            // Our convention f(λ) ~ Re[c e^{imλ}]: a westward-moving
            // pattern has phase(c) growing as −m·(dλ/dt)·t = −ω·... sign:
            // pattern ∝ cos(mλ + φ(t)), moving west ⇒ φ increases.
            let expected = (-omega * dt * steps as f64).rem_euclid(2.0 * std::f64::consts::PI);
            let measured = measured.rem_euclid(2.0 * std::f64::consts::PI);
            (measured, expected)
        });
        let (measured, expected) = out.results[0];
        let diff = (measured - expected)
            .abs()
            .min(2.0 * std::f64::consts::PI - (measured - expected).abs());
        assert!(
            diff < 0.05,
            "phase {measured} vs Rossby–Haurwitz {expected} (diff {diff})"
        );
    }

    #[test]
    fn jacobian_of_field_with_itself_vanishes() {
        Universe::run(2, |comm| {
            let par = par(comm);
            let mut a = SpectralField::zeros(par.base.trunc);
            a.set(1, 2, Complex::new(0.8, -0.1));
            a.set(3, 4, Complex::new(-0.2, 0.4));
            let j = jacobian(&par, comm, &a, &a);
            for (m, n) in par.base.trunc.pairs() {
                assert!(j.get(m, n).abs() < 1e-12, "J(a,a) leak at ({m},{n})");
            }
        });
    }

    #[test]
    fn jacobian_conserves_mean_vorticity() {
        Universe::run(1, |comm| {
            let par = par(comm);
            let mut a = SpectralField::zeros(par.base.trunc);
            let mut b = SpectralField::zeros(par.base.trunc);
            a.set(1, 2, Complex::new(0.5, 0.3));
            a.set(0, 3, Complex::new(1.0, 0.0));
            b.set(2, 3, Complex::new(-0.4, 0.7));
            b.set(0, 1, Complex::new(0.6, 0.0));
            let j = jacobian(&par, comm, &a, &b);
            // Global mean of a Jacobian is zero.
            assert!(j.get(0, 0).abs() < 1e-12, "mean = {:?}", j.get(0, 0));
        });
    }

    #[test]
    fn ekman_drag_spins_down_bottom_level() {
        Universe::run(1, |comm| {
            let par = par(comm);
            let cfg = QgConfig {
                nu_hyper: 0.0,
                tau_thermal: 1e30,
                ..Default::default()
            };
            let c = QgCore::new(cfg, par.base.trunc);
            let mut psi: Vec<SpectralField> =
                (0..3).map(|_| SpectralField::zeros(c.trunc)).collect();
            for p in psi.iter_mut() {
                p.set(0, 2, Complex::new(1.0e6, 0.0)); // zonal flow, no β/J
            }
            let mut state = QgState {
                q_prev: c.pv_from_psi(&psi),
                q_now: c.pv_from_psi(&psi),
            };
            let dpsi_eq: Vec<SpectralField> =
                (0..2).map(|_| SpectralField::zeros(c.trunc)).collect();
            let e0: f64 = state.q_now.iter().map(|q| q.mean_square()).sum();
            for s in 0..24 {
                let tend = c.tendencies(&par, comm, &state.q_now, &dpsi_eq, None);
                if s == 0 {
                    c.step_euler(&mut state, &tend, 1800.0);
                } else {
                    c.step_leapfrog(&mut state, &tend, 1800.0);
                }
            }
            let e1: f64 = state.q_now.iter().map(|q| q.mean_square()).sum();
            assert!(e1 < e0, "drag should dissipate: {e0} → {e1}");
            assert!(e1 > 0.5 * e0, "half-day should not kill the flow");
        });
    }

    #[test]
    fn thermal_relaxation_pulls_shear_toward_equilibrium() {
        Universe::run(1, |comm| {
            let par = par(comm);
            let cfg = QgConfig {
                nu_hyper: 0.0,
                tau_ekman: 1e30,
                tau_thermal: 5.0 * 86_400.0,
                ..Default::default()
            };
            let c = QgCore::new(cfg, par.base.trunc);
            // Start at rest; equilibrium demands a shear.
            let mut state = QgState::zeros(par.base.trunc, 3);
            let mut dpsi_eq: Vec<SpectralField> =
                (0..2).map(|_| SpectralField::zeros(c.trunc)).collect();
            dpsi_eq[0].set(0, 2, Complex::new(5.0e6, 0.0));
            for s in 0..48 {
                let tend = c.tendencies(&par, comm, &state.q_now, &dpsi_eq, None);
                if s == 0 {
                    c.step_euler(&mut state, &tend, 1800.0);
                } else {
                    c.step_leapfrog(&mut state, &tend, 1800.0);
                }
            }
            let psi = c.psi_from_pv(&state.q_now);
            let shear = psi[0].get(0, 2) - psi[1].get(0, 2);
            assert!(
                shear.re > 1.0e5,
                "shear should build toward equilibrium, got {shear:?}"
            );
            assert!(shear.re < 5.0e6, "should not overshoot equilibrium");
        });
    }
}
