//! Pre-allocated scratch for the atmosphere step.
//!
//! The coupled hot loop must not allocate in steady state (the
//! zero-churn rule; see PERFORMANCE.md). Everything the atmosphere
//! step needs beyond its prognostic state — streamfunctions, spectral
//! tendencies, transform scratch, grid-space Jacobian slabs, the
//! physics column and its working vectors — lives in an
//! [`AtmWorkspace`] created once and reused for every step. The
//! workspace-threaded step ([`crate::model::AtmModel::step_ws`]) is
//! bit-identical to the allocate-per-step path
//! ([`crate::model::AtmModel::step`]): both perform exactly the same
//! floating-point operations in the same order; only the ownership of
//! the buffers differs. Tests and doctests pin that equivalence.

use foam_grid::Field2;
use foam_physics::{AtmColumn, PhysicsWorkspace};
use foam_spectral::{ParTransform, SpectralField, SpectralWorkspace};

use crate::model::AtmModel;

/// Scratch for the dynamical-core and tracer kernels: spectral
/// transform workspace, per-level streamfunction/tendency fields, and
/// the grid-space slabs the Jacobian evaluates on.
///
/// One `DynWorkspace` serves every kernel in a step — the Jacobian,
/// winds, tracer advection, PV tendencies and the leapfrog update all
/// borrow disjoint pieces of it.
///
/// ```
/// use foam_atm::dynamics::{QgConfig, QgCore, QgState};
/// use foam_atm::workspace::DynWorkspace;
/// use foam_grid::AtmGrid;
/// use foam_mpi::Universe;
/// use foam_spectral::{Complex, ParTransform, SpectralField, SphericalTransform, Truncation};
///
/// Universe::run(1, |comm| {
///     let par = ParTransform::new(
///         SphericalTransform::new(AtmGrid::new(24, 16), Truncation::rhomboidal(5)),
///         comm,
///     );
///     let core = QgCore::new(QgConfig::default(), par.base.trunc);
///     let mut a = QgState::zeros(par.base.trunc, 3);
///     a.q_now[0].set(2, 3, Complex::new(1.0e-6, -2.0e-7));
///     a.q_prev = a.q_now.clone();
///     let mut b = a.clone();
///     let dpsi: Vec<SpectralField> =
///         (0..2).map(|_| SpectralField::zeros(par.base.trunc)).collect();
///     let mut dw = DynWorkspace::new(&par, 3);
///     for s in 0..4 {
///         // Allocate-per-step path…
///         let tend = core.tendencies(&par, comm, &a.q_now, &dpsi, None);
///         // …and the workspace path: bit-identical states.
///         core.tendencies_ws(&par, comm, &b.q_now, &dpsi, None, &mut dw);
///         if s == 0 {
///             core.step_euler(&mut a, &tend, 1800.0);
///             core.step_euler_ws(&mut b, 1800.0, &mut dw);
///         } else {
///             core.step_leapfrog(&mut a, &tend, 1800.0);
///             core.step_leapfrog_ws(&mut b, 1800.0, &mut dw);
///         }
///     }
///     for k in 0..3 {
///         assert_eq!(a.q_now[k].data, b.q_now[k].data);
///         assert_eq!(a.q_prev[k].data, b.q_prev[k].data);
///     }
/// });
/// ```
#[derive(Debug, Clone)]
pub struct DynWorkspace {
    /// Legendre/FFT/reduction scratch for the spectral transforms.
    pub(crate) spec: SpectralWorkspace,
    /// ψ per dynamic level, recomputed inside `tendencies_ws`.
    pub(crate) psi: Vec<SpectralField>,
    /// PV tendencies per dynamic level (output of `tendencies_ws`,
    /// input of the `step_*_ws` time steppers).
    pub(crate) tend: Vec<SpectralField>,
    /// Orographic-Jacobian output.
    pub(crate) jac: SpectralField,
    /// Ekman-drag Laplacian.
    pub(crate) drag: SpectralField,
    /// Leapfrog scratch: the new time level and the Robert-filtered
    /// middle level, swapped into the state each step.
    pub(crate) q_next: SpectralField,
    pub(crate) filtered: SpectralField,
    /// Tracer spectral coefficients and advective tendency.
    pub(crate) tr_spec: SpectralField,
    pub(crate) tr_tend: SpectralField,
    /// Grid-space slabs: four synthesis outputs plus the Jacobian
    /// product field (also reused as wind scratch).
    pub(crate) ga: Field2,
    pub(crate) gb: Field2,
    pub(crate) gc: Field2,
    pub(crate) gd: Field2,
    pub(crate) gj: Field2,
    /// Reciprocal squared Rossby radii of the interfaces.
    pub(crate) rossby_r: Vec<f64>,
}

impl DynWorkspace {
    /// Scratch sized for `nlev` dynamic levels on `par`'s local rows.
    pub fn new(par: &ParTransform, nlev: usize) -> Self {
        let trunc = par.base.trunc;
        let nlon = par.base.grid.nlon;
        let rows = par.n_local_rows();
        let sf = || SpectralField::zeros(trunc);
        let gf = || Field2::zeros(nlon, rows);
        DynWorkspace {
            spec: SpectralWorkspace::new(&par.base),
            psi: (0..nlev).map(|_| sf()).collect(),
            tend: (0..nlev).map(|_| sf()).collect(),
            jac: sf(),
            drag: sf(),
            q_next: sf(),
            filtered: sf(),
            tr_spec: sf(),
            tr_tend: sf(),
            ga: gf(),
            gb: gf(),
            gc: gf(),
            gd: gf(),
            gj: gf(),
            rossby_r: Vec::new(),
        }
    }
}

/// Everything [`AtmModel::step_ws`] needs beyond the prognostic state:
/// a [`DynWorkspace`] for the spectral kernels, per-level wind and
/// streamfunction buffers, the equilibrium-shear fields, and one
/// reusable physics column with its [`PhysicsWorkspace`].
///
/// Create it once per run with [`AtmWorkspace::new`] and pass it to
/// every [`AtmModel::step_ws`] call; after the first few steps the
/// buffers reach their steady-state capacity and the step allocates
/// nothing. See [`AtmModel::step_ws`] for a usage example.
#[derive(Debug, Clone)]
pub struct AtmWorkspace {
    /// Kernel-level scratch.
    pub(crate) inner: DynWorkspace,
    /// ψ per dynamic level for winds and tracer advection (distinct
    /// from `inner.psi`, which `tendencies_ws` overwrites later in the
    /// step).
    pub(crate) psi: Vec<SpectralField>,
    /// (u, v) per dynamic level.
    pub(crate) winds: Vec<(Field2, Field2)>,
    /// Equilibrium interface shears (nlev − 1 fields).
    pub(crate) dpsi_eq: Vec<SpectralField>,
    /// Layer-pair mean temperature accumulator.
    pub(crate) shear_field: Field2,
    /// Tracer-advection output slab, swapped into the state per level.
    pub(crate) tr_out: Field2,
    /// The one physics column, reloaded per grid cell.
    pub(crate) col: AtmColumn,
    /// Column-physics scratch.
    pub(crate) phys: PhysicsWorkspace,
}

impl AtmWorkspace {
    /// Workspace sized for `model`'s grid, truncation and level counts.
    pub fn new(model: &AtmModel) -> Self {
        let par = &model.par;
        let trunc = par.base.trunc;
        let nld = model.cfg.dynamics.nlev;
        let nlon = par.base.grid.nlon;
        let rows = par.n_local_rows();
        AtmWorkspace {
            inner: DynWorkspace::new(par, nld),
            psi: (0..nld).map(|_| SpectralField::zeros(trunc)).collect(),
            winds: (0..nld)
                .map(|_| (Field2::zeros(nlon, rows), Field2::zeros(nlon, rows)))
                .collect(),
            dpsi_eq: (0..nld - 1).map(|_| SpectralField::zeros(trunc)).collect(),
            shear_field: Field2::zeros(nlon, rows),
            tr_out: Field2::zeros(nlon, rows),
            col: AtmColumn::isothermal(model.cfg.nlev_phys, 2000.0, 280.0),
            phys: PhysicsWorkspace::with_levels(model.cfg.nlev_phys),
        }
    }
}
