//! The rhomboidal spectral truncation.
//!
//! FOAM's atmosphere runs at R15: for each zonal wavenumber m ∈ [0, M]
//! the meridional degrees n ∈ [m, m + M] are retained — a "rhomboid" in
//! the (m, n) plane, M+1 degrees per wavenumber. (Triangular truncation
//! would instead cap n ≤ M.) The storage layout here is dense:
//! `idx(m, n) = m (M+1) + (n − m)`.

use foam_ckpt::{ByteReader, CkptError, Codec};

/// A rhomboidal truncation R(M).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Truncation {
    /// Largest zonal wavenumber M (15 for R15).
    pub m_max: usize,
}

impl Truncation {
    pub fn rhomboidal(m_max: usize) -> Self {
        Truncation { m_max }
    }

    /// The paper's resolution.
    pub fn r15() -> Self {
        Self::rhomboidal(15)
    }

    /// Degrees retained per zonal wavenumber.
    #[inline]
    pub fn n_per_m(&self) -> usize {
        self.m_max + 1
    }

    /// Total number of retained (m, n) pairs.
    #[inline]
    pub fn len(&self) -> usize {
        (self.m_max + 1) * (self.m_max + 1)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Highest retained degree for wavenumber `m`.
    #[inline]
    pub fn n_max(&self, m: usize) -> usize {
        m + self.m_max
    }

    /// Largest degree overall (n of the corner coefficient).
    #[inline]
    pub fn n_max_overall(&self) -> usize {
        2 * self.m_max
    }

    /// Flat index of coefficient (m, n).
    #[inline]
    pub fn idx(&self, m: usize, n: usize) -> usize {
        debug_assert!(m <= self.m_max && n >= m && n <= self.n_max(m));
        m * self.n_per_m() + (n - m)
    }

    /// Iterate all retained (m, n) pairs, m-major.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..=self.m_max).flat_map(move |m| (m..=self.n_max(m)).map(move |n| (m, n)))
    }

    /// Minimum longitudes for alias-free quadratic products: 3M + 1.
    pub fn min_nlon(&self) -> usize {
        3 * self.m_max + 1
    }

    /// Minimum Gaussian latitudes for alias-free quadratic products under
    /// rhomboidal truncation: (5M + 1) / 2, rounded up.
    pub fn min_nlat(&self) -> usize {
        (5 * self.m_max + 1).div_ceil(2)
    }
}

impl Codec for Truncation {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.m_max.encode(buf);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(Truncation {
            m_max: usize::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r15_counts() {
        let t = Truncation::r15();
        assert_eq!(t.len(), 256);
        assert_eq!(t.n_per_m(), 16);
        assert_eq!(t.n_max(0), 15);
        assert_eq!(t.n_max(15), 30);
        assert_eq!(t.n_max_overall(), 30);
        // The paper's 48 × 40 grid satisfies the alias-free bounds.
        assert!(t.min_nlon() <= 48);
        assert!(t.min_nlat() <= 40);
    }

    #[test]
    fn indexing_is_dense_and_bijective() {
        let t = Truncation::rhomboidal(6);
        let mut seen = vec![false; t.len()];
        for (m, n) in t.pairs() {
            let k = t.idx(m, n);
            assert!(!seen[k], "duplicate index {k}");
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pairs_respect_rhomboid_shape() {
        let t = Truncation::rhomboidal(4);
        for (m, n) in t.pairs() {
            assert!(n >= m && n <= m + 4);
        }
        assert_eq!(t.pairs().count(), t.len());
    }
}
