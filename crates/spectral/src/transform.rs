//! Serial spherical-harmonic transform between a Gaussian grid and a
//! rhomboidally truncated spectral space, plus spectral-space calculus.

use foam_ckpt::{ByteReader, CkptError, Codec};
use foam_grid::constants::EARTH_RADIUS;
use foam_grid::{AtmGrid, Field2};

use crate::fft::{real_analysis_into, real_synthesis_into, Complex, FftPlan};
use crate::legendre::LegendreTable;
use crate::truncation::Truncation;

/// A field in spectral space under a [`Truncation`].
///
/// Convention: the grid field is recovered as
/// f(λ, μ) = Re\[ Σ_m (2 − δ_{m0}) e^{imλ} Σ_n a_{mn} P̄ₙᵐ(μ) \],
/// with P̄ orthonormal on μ ∈ \[−1, 1\].
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralField {
    pub trunc: Truncation,
    pub data: Vec<Complex>,
}

impl SpectralField {
    pub fn zeros(trunc: Truncation) -> Self {
        SpectralField {
            trunc,
            data: vec![Complex::ZERO; trunc.len()],
        }
    }

    #[inline]
    pub fn get(&self, m: usize, n: usize) -> Complex {
        self.data[self.trunc.idx(m, n)]
    }

    #[inline]
    pub fn set(&mut self, m: usize, n: usize, v: Complex) {
        let k = self.trunc.idx(m, n);
        self.data[k] = v;
    }

    /// `self += a * other`.
    pub fn axpy(&mut self, a: f64, other: &SpectralField) {
        assert_eq!(self.trunc, other.trunc);
        for (x, y) in self.data.iter_mut().zip(&other.data) {
            *x += y.scale(a);
        }
    }

    pub fn scale(&mut self, a: f64) {
        for x in &mut self.data {
            *x = x.scale(a);
        }
    }

    /// Spectral Laplacian: each (m, n) multiplied by −n(n+1)/a².
    pub fn laplacian(&self) -> SpectralField {
        let mut out = self.clone();
        self.laplacian_into(&mut out);
        out
    }

    /// Allocation-free [`SpectralField::laplacian`]: writes the
    /// Laplacian of `self` into `out` (every coefficient is
    /// overwritten). Bit-identical to the allocating form.
    pub fn laplacian_into(&self, out: &mut SpectralField) {
        assert_eq!(self.trunc, out.trunc);
        let a2 = EARTH_RADIUS * EARTH_RADIUS;
        for (m, n) in self.trunc.pairs() {
            let k = self.trunc.idx(m, n);
            let eig = -((n * (n + 1)) as f64) / a2;
            out.data[k] = self.data[k].scale(eig);
        }
    }

    /// Overwrite `self` with a bitwise copy of `other`'s coefficients.
    #[inline]
    pub fn copy_from(&mut self, other: &SpectralField) {
        assert_eq!(self.trunc, other.trunc);
        self.data.copy_from_slice(&other.data);
    }

    /// Inverse Laplacian; the (0,0) (global mean) component, which is in
    /// the Laplacian's null space, is set to zero.
    pub fn inv_laplacian(&self) -> SpectralField {
        let mut out = self.clone();
        let a2 = EARTH_RADIUS * EARTH_RADIUS;
        for (m, n) in self.trunc.pairs() {
            let k = self.trunc.idx(m, n);
            if n == 0 {
                out.data[k] = Complex::ZERO;
            } else {
                let eig = -((n * (n + 1)) as f64) / a2;
                out.data[k] = self.data[k].scale(1.0 / eig);
            }
        }
        out
    }

    /// Implicit ∇⁴ hyperdiffusion over a step `dt`:
    /// a ← a / (1 + dt ν₄ (n(n+1)/a²)²). Unconditionally stable — the
    /// standard spectral-model damping (the ocean uses an explicit ∇⁴ on
    /// its grid instead).
    pub fn apply_hyperdiffusion(&mut self, nu4: f64, dt: f64) {
        let a2 = EARTH_RADIUS * EARTH_RADIUS;
        for (m, n) in self.trunc.pairs() {
            let k = self.trunc.idx(m, n);
            let lap = (n * (n + 1)) as f64 / a2;
            let f = 1.0 / (1.0 + dt * nu4 * lap * lap);
            self.data[k] = self.data[k].scale(f);
        }
    }

    /// Implicit combined ∇² + ∇⁴ diffusion over a step `dt`:
    /// a ← a / (1 + dt (ν₂ L + ν₄ L²)) with L = n(n+1)/a². Used by the
    /// tracer advection, where a little ∇² keeps explicit advection tame.
    pub fn apply_diffusion(&mut self, nu2: f64, nu4: f64, dt: f64) {
        let a2 = EARTH_RADIUS * EARTH_RADIUS;
        for (m, n) in self.trunc.pairs() {
            let k = self.trunc.idx(m, n);
            let lap = (n * (n + 1)) as f64 / a2;
            let f = 1.0 / (1.0 + dt * (nu2 * lap + nu4 * lap * lap));
            self.data[k] = self.data[k].scale(f);
        }
    }

    /// Area-mean of f² over the sphere, computed spectrally (Parseval).
    pub fn mean_square(&self) -> f64 {
        let mut s = 0.0;
        for (m, n) in self.trunc.pairs() {
            let w = if m == 0 { 1.0 } else { 2.0 };
            s += w * self.get(m, n).norm_sq();
        }
        0.5 * s
    }
}

impl Codec for SpectralField {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.trunc.encode(buf);
        self.data.encode(buf);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        let trunc = Truncation::decode(r)?;
        let data = Vec::<Complex>::decode(r)?;
        if data.len() != trunc.len() {
            return Err(CkptError::Corrupt(format!(
                "SpectralField has {} coefficients but truncation R{} holds {}",
                data.len(),
                trunc.m_max,
                trunc.len()
            )));
        }
        Ok(SpectralField { trunc, data })
    }
}

/// Pre-allocated scratch for the spherical-harmonic transform: FFT
/// scratch, one row of Fourier coefficients, a spectral accumulator and
/// its flattened `(re, im)` image for cross-rank reduction.
///
/// Every `_ws`/`_into` method of [`SphericalTransform`] and
/// [`ParTransform`](crate::ParTransform) borrows the pieces it needs
/// from one of these instead of allocating per call, which is what
/// keeps the coupled hot loop allocation-free in steady state (see
/// PERFORMANCE.md). One workspace serves one transform engine; sharing
/// it across engines of different sizes panics on a size assert.
///
/// ```
/// use foam_grid::{AtmGrid, Field2};
/// use foam_spectral::{SpectralField, SpectralWorkspace, SphericalTransform, Truncation};
///
/// let t = SphericalTransform::new(AtmGrid::new(16, 8), Truncation::rhomboidal(3));
/// let mut ws = SpectralWorkspace::new(&t);
/// let f = Field2::from_fn(16, 8, |i, j| (i + j) as f64);
/// let mut spec = SpectralField::zeros(t.trunc);
/// t.analyze_ws(&f, &mut ws, &mut spec);
/// assert_eq!(spec, t.analyze(&f)); // bit-identical to the allocating path
/// ```
#[derive(Debug, Clone)]
pub struct SpectralWorkspace {
    /// FFT scratch (`plan.scratch_len()` elements).
    pub(crate) fft: Vec<Complex>,
    /// One longitude row of Fourier coefficients (`m_max + 1`).
    pub(crate) cm: Vec<Complex>,
    /// Spectral accumulator for the distributed analysis.
    pub(crate) acc: Vec<Complex>,
    /// `acc` flattened to `(re, im)` pairs for the allreduce.
    pub(crate) flat: Vec<f64>,
}

impl SpectralWorkspace {
    /// A workspace sized for `t`; reuse it across all transforms of the
    /// same engine.
    pub fn new(t: &SphericalTransform) -> Self {
        SpectralWorkspace {
            fft: vec![Complex::ZERO; t.plan.scratch_len()],
            cm: vec![Complex::ZERO; t.trunc.m_max + 1],
            acc: vec![Complex::ZERO; t.trunc.len()],
            flat: vec![0.0; 2 * t.trunc.len()],
        }
    }
}

/// Transform engine bound to a grid and truncation: precomputed FFT plan
/// and Legendre tables.
pub struct SphericalTransform {
    pub grid: AtmGrid,
    pub trunc: Truncation,
    plan: FftPlan,
    /// One table per zonal wavenumber m, tabulated at all grid latitudes.
    tables: Vec<LegendreTable>,
}

impl SphericalTransform {
    pub fn new(grid: AtmGrid, trunc: Truncation) -> Self {
        assert!(
            grid.nlon >= 2 * trunc.m_max + 2,
            "nlon {} too small for m_max {}",
            grid.nlon,
            trunc.m_max
        );
        let plan = FftPlan::new(grid.nlon);
        let tables = (0..=trunc.m_max)
            .map(|m| LegendreTable::new(m, trunc.n_max(m), &grid.mu))
            .collect();
        SphericalTransform {
            grid,
            trunc,
            plan,
            tables,
        }
    }

    /// The paper's configuration: R15 on the 48 × 40 Gaussian grid.
    pub fn r15() -> Self {
        Self::new(AtmGrid::r15(), Truncation::r15())
    }

    /// Forward (analysis) transform of a full grid field.
    pub fn analyze(&self, f: &Field2) -> SpectralField {
        let mut spec = SpectralField::zeros(self.trunc);
        self.accumulate_rows(f, 0, f.ny(), &mut spec.data);
        spec
    }

    /// Allocation-free [`SphericalTransform::analyze`]: overwrites
    /// `out` with the analysis of `f`, borrowing scratch from `ws`.
    /// Bit-identical to the allocating form.
    pub fn analyze_ws(&self, f: &Field2, ws: &mut SpectralWorkspace, out: &mut SpectralField) {
        assert_eq!(out.trunc, self.trunc);
        out.data.fill(Complex::ZERO);
        self.accumulate_rows_scratch(f, 0, f.ny(), &mut out.data, &mut ws.cm, &mut ws.fft);
    }

    /// Accumulate the Legendre-quadrature contribution of grid rows
    /// `[j0, j1)` into `acc` (used directly by the distributed transform;
    /// the full analysis is the sum of all rows' contributions).
    pub fn accumulate_rows(&self, f: &Field2, j0: usize, j1: usize, acc: &mut [Complex]) {
        let mut cm = vec![Complex::ZERO; self.trunc.m_max + 1];
        let mut fft = vec![Complex::ZERO; self.plan.scratch_len()];
        self.accumulate_rows_scratch(f, j0, j1, acc, &mut cm, &mut fft);
    }

    /// [`SphericalTransform::accumulate_rows`] with explicit scratch:
    /// `cm` holds one row of Fourier coefficients (`m_max + 1`) and
    /// `fft` the FFT scratch (`FftPlan::scratch_len` of the grid's
    /// plan). [`SpectralWorkspace`] carries suitably sized buffers.
    pub fn accumulate_rows_scratch(
        &self,
        f: &Field2,
        j0: usize,
        j1: usize,
        acc: &mut [Complex],
        cm: &mut [Complex],
        fft: &mut [Complex],
    ) {
        assert_eq!(f.nx(), self.grid.nlon);
        assert_eq!(acc.len(), self.trunc.len());
        let m_max = self.trunc.m_max;
        assert_eq!(cm.len(), m_max + 1);
        for (jl, j) in (j0..j1).enumerate() {
            let row = if f.ny() == self.grid.nlat {
                f.row(j)
            } else {
                // Local slab: row index is relative.
                f.row(jl)
            };
            real_analysis_into(&self.plan, row, cm, fft);
            let w = self.grid.weights[j];
            for m in 0..=m_max {
                let t = &self.tables[m];
                let base = self.trunc.idx(m, m);
                let c = cm[m].scale(w);
                let prow = t.p_row(j);
                for (dn, &p) in prow.iter().enumerate() {
                    acc[base + dn] += c.scale(p);
                }
            }
        }
    }

    /// Inverse (synthesis) transform onto the full grid.
    pub fn synthesize(&self, spec: &SpectralField) -> Field2 {
        self.synthesize_rows(spec, 0, self.grid.nlat, SynthKind::Value)
    }

    /// Synthesis of ∂f/∂λ on the full grid.
    pub fn synthesize_dlambda(&self, spec: &SpectralField) -> Field2 {
        self.synthesize_rows(spec, 0, self.grid.nlat, SynthKind::DLambda)
    }

    /// Synthesis of cos φ · ∂f/∂φ (= (1 − μ²) ∂f/∂μ) on the full grid.
    pub fn synthesize_cosgrad(&self, spec: &SpectralField) -> Field2 {
        self.synthesize_rows(spec, 0, self.grid.nlat, SynthKind::CosGrad)
    }

    /// Synthesize rows `[j0, j1)` of the chosen quantity, returning a
    /// `(nlon × (j1 − j0))` slab.
    pub fn synthesize_rows(
        &self,
        spec: &SpectralField,
        j0: usize,
        j1: usize,
        kind: SynthKind,
    ) -> Field2 {
        let mut out = Field2::zeros(self.grid.nlon, j1 - j0);
        let mut cm = vec![Complex::ZERO; self.trunc.m_max + 1];
        let mut fft = vec![Complex::ZERO; self.plan.scratch_len()];
        self.synthesize_rows_scratch(spec, j0, j1, kind, &mut cm, &mut fft, &mut out);
        out
    }

    /// Allocation-free [`SphericalTransform::synthesize_rows`]:
    /// overwrites the `(nlon × (j1 − j0))` slab `out`, borrowing
    /// scratch from `ws`. Bit-identical to the allocating form.
    pub fn synthesize_rows_into(
        &self,
        spec: &SpectralField,
        j0: usize,
        j1: usize,
        kind: SynthKind,
        ws: &mut SpectralWorkspace,
        out: &mut Field2,
    ) {
        self.synthesize_rows_scratch(spec, j0, j1, kind, &mut ws.cm, &mut ws.fft, out);
    }

    /// [`SphericalTransform::synthesize_rows_into`] with explicit
    /// scratch slices (see
    /// [`SphericalTransform::accumulate_rows_scratch`] for sizes).
    #[allow(clippy::too_many_arguments)]
    pub fn synthesize_rows_scratch(
        &self,
        spec: &SpectralField,
        j0: usize,
        j1: usize,
        kind: SynthKind,
        cm: &mut [Complex],
        fft: &mut [Complex],
        out: &mut Field2,
    ) {
        assert_eq!(spec.trunc, self.trunc);
        assert_eq!(out.nx(), self.grid.nlon);
        assert_eq!(out.ny(), j1 - j0);
        assert_eq!(cm.len(), self.trunc.m_max + 1);
        for j in j0..j1 {
            for (m, c) in cm.iter_mut().enumerate() {
                let t = &self.tables[m];
                let base = self.trunc.idx(m, m);
                let mut acc = Complex::ZERO;
                let row = match kind {
                    SynthKind::Value | SynthKind::DLambda => t.p_row(j),
                    SynthKind::CosGrad => t.h_row(j),
                };
                for (dn, &p) in row.iter().enumerate() {
                    acc += spec.data[base + dn].scale(p);
                }
                if kind == SynthKind::DLambda {
                    acc = acc.mul_i().scale(m as f64);
                }
                *c = acc;
            }
            real_synthesis_into(&self.plan, cm, out.row_mut(j - j0), fft);
        }
    }

    /// Rotational winds from a streamfunction: returns (U, V) where
    /// U = u cos φ and V = v cos φ, with u = −(1/a) ∂ψ/∂φ and
    /// v = (1/(a cos φ)) ∂ψ/∂λ.
    pub fn uv_from_streamfunction(&self, psi: &SpectralField) -> (Field2, Field2) {
        let mut ucos = self.synthesize_cosgrad(psi);
        ucos.scale(-1.0 / EARTH_RADIUS);
        let mut vcos = self.synthesize_dlambda(psi);
        vcos.scale(1.0 / EARTH_RADIUS);
        (ucos, vcos)
    }
}

/// Which quantity [`SphericalTransform::synthesize_rows`] produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthKind {
    Value,
    DLambda,
    CosGrad,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SphericalTransform {
        SphericalTransform::new(AtmGrid::new(24, 16), Truncation::rhomboidal(5))
    }

    fn rand_spec(t: &SphericalTransform, seed: u64) -> SpectralField {
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut spec = SpectralField::zeros(t.trunc);
        for (m, n) in t.trunc.pairs() {
            let re = next();
            let im = if m == 0 { 0.0 } else { next() };
            spec.set(m, n, Complex::new(re, im));
        }
        spec
    }

    #[test]
    fn synthesize_then_analyze_is_identity() {
        let t = small();
        let spec = rand_spec(&t, 3);
        let grid = t.synthesize(&spec);
        let back = t.analyze(&grid);
        for (m, n) in t.trunc.pairs() {
            let d = back.get(m, n) - spec.get(m, n);
            assert!(d.abs() < 1e-11, "m={m} n={n}: {d:?}");
        }
    }

    #[test]
    fn constant_field_is_pure_00_mode() {
        let t = small();
        let f = Field2::filled(t.grid.nlon, t.grid.nlat, 4.2);
        let spec = t.analyze(&f);
        for (m, n) in t.trunc.pairs() {
            if (m, n) == (0, 0) {
                assert!((spec.get(0, 0).re - 4.2 * 2.0f64.sqrt()).abs() < 1e-12);
            } else {
                assert!(spec.get(m, n).abs() < 1e-12, "leakage at ({m},{n})");
            }
        }
        let back = t.synthesize(&spec);
        for &v in back.as_slice() {
            assert!((v - 4.2).abs() < 1e-12);
        }
    }

    #[test]
    fn laplacian_has_harmonic_eigenvalues() {
        let t = small();
        let (m, n) = (2usize, 4usize);
        let mut spec = SpectralField::zeros(t.trunc);
        spec.set(m, n, Complex::new(1.0, -0.5));
        let f = t.synthesize(&spec);
        let lap = t.synthesize(&spec.laplacian());
        let eig = -((n * (n + 1)) as f64) / (EARTH_RADIUS * EARTH_RADIUS);
        for (a, b) in f.as_slice().iter().zip(lap.as_slice()) {
            assert!((b - eig * a).abs() < 1e-18);
        }
    }

    #[test]
    fn inv_laplacian_inverts_away_from_nullspace() {
        let t = small();
        let mut spec = rand_spec(&t, 9);
        spec.set(0, 0, Complex::ZERO);
        let roundtrip = spec.laplacian().inv_laplacian();
        for (m, n) in t.trunc.pairs() {
            let d = roundtrip.get(m, n) - spec.get(m, n);
            assert!(d.abs() < 1e-12);
        }
    }

    #[test]
    fn dlambda_of_sinusoid() {
        let t = small();
        // f = cos φ sin λ is the (m=1, n=1) harmonic combination; build
        // it on the grid and differentiate spectrally.
        let f = Field2::from_fn(t.grid.nlon, t.grid.nlat, |i, j| {
            t.grid.lats[j].cos() * t.grid.lons[i].sin()
        });
        let spec = t.analyze(&f);
        let df = t.synthesize_dlambda(&spec);
        for j in 0..t.grid.nlat {
            for i in 0..t.grid.nlon {
                let expect = t.grid.lats[j].cos() * t.grid.lons[i].cos();
                assert!((df.get(i, j) - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn cosgrad_of_mu() {
        let t = small();
        // f = μ = sin φ; cos φ ∂f/∂φ = cos²φ = 1 − μ².
        let f = Field2::from_fn(t.grid.nlon, t.grid.nlat, |_i, j| t.grid.mu[j]);
        let spec = t.analyze(&f);
        let g = t.synthesize_cosgrad(&spec);
        for j in 0..t.grid.nlat {
            let expect = 1.0 - t.grid.mu[j] * t.grid.mu[j];
            for i in 0..t.grid.nlon {
                assert!((g.get(i, j) - expect).abs() < 1e-10, "j={j}");
            }
        }
    }

    #[test]
    fn uv_from_solid_body_rotation() {
        let t = small();
        // ψ = −Ω a² μ gives solid-body rotation u = Ω a cos φ, v = 0.
        let omega = 3.0e-6;
        let f = Field2::from_fn(t.grid.nlon, t.grid.nlat, |_i, j| {
            -omega * EARTH_RADIUS * EARTH_RADIUS * t.grid.mu[j]
        });
        let psi = t.analyze(&f);
        let (ucos, vcos) = t.uv_from_streamfunction(&psi);
        for j in 0..t.grid.nlat {
            let cos = t.grid.lats[j].cos();
            let expect_u = omega * EARTH_RADIUS * cos; // u = Ωa cosφ
            for i in 0..t.grid.nlon {
                assert!(
                    (ucos.get(i, j) - expect_u * cos).abs() < 1e-7 * EARTH_RADIUS.abs() * omega,
                    "u mismatch at j={j}"
                );
                assert!(vcos.get(i, j).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn parseval_mean_square_matches_grid_quadrature() {
        let t = small();
        let spec = rand_spec(&t, 21);
        let f = t.synthesize(&spec);
        // Grid quadrature of f² with Gaussian weights.
        let mut s = 0.0;
        for j in 0..t.grid.nlat {
            let w = t.grid.weights[j];
            for i in 0..t.grid.nlon {
                s += w * f.get(i, j) * f.get(i, j);
            }
        }
        let grid_ms = s / (2.0 * t.grid.nlon as f64);
        assert!(
            (grid_ms - spec.mean_square()).abs() < 1e-12 * grid_ms.max(1.0),
            "grid {grid_ms} vs spectral {}",
            spec.mean_square()
        );
    }

    #[test]
    fn hyperdiffusion_damps_high_n_hardest() {
        let t = small();
        let mut spec = SpectralField::zeros(t.trunc);
        spec.set(0, 1, Complex::ONE);
        spec.set(5, 10, Complex::ONE);
        spec.apply_hyperdiffusion(1.0e16, 1800.0);
        let low = spec.get(0, 1).abs();
        let high = spec.get(5, 10).abs();
        assert!(low > high, "low {low} should outlive high {high}");
        assert!(low <= 1.0 && high < 1.0);
    }

    #[test]
    fn slab_synthesis_matches_full() {
        let t = small();
        let spec = rand_spec(&t, 77);
        let full = t.synthesize(&spec);
        let slab = t.synthesize_rows(&spec, 4, 9, SynthKind::Value);
        for j in 4..9 {
            for i in 0..t.grid.nlon {
                assert_eq!(slab.get(i, j - 4), full.get(i, j));
            }
        }
    }

    #[test]
    fn partial_row_accumulation_sums_to_full_analysis() {
        let t = small();
        let spec = rand_spec(&t, 5);
        let grid = t.synthesize(&spec);
        let mut acc = vec![Complex::ZERO; t.trunc.len()];
        t.accumulate_rows(&grid, 0, 7, &mut acc);
        t.accumulate_rows(&grid, 7, t.grid.nlat, &mut acc);
        let full = t.analyze(&grid);
        for (a, b) in acc.iter().zip(&full.data) {
            assert!((*a - *b).abs() < 1e-13);
        }
    }
}
