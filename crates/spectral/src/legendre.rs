//! Fully normalized associated Legendre functions P̄ₙᵐ(μ) and their
//! μ-derivatives, precomputed at the Gaussian latitudes.
//!
//! Normalization: ∫₋₁¹ P̄ₙᵐ P̄ₙ′ᵐ dμ = δₙₙ′, so with Gaussian weights the
//! discrete Legendre transform is exactly orthonormal for band-limited
//! fields and analysis/synthesis round-trip to machine precision.

/// P̄ values (and derivative combinations) tabulated for one zonal
/// wavenumber `m` at a set of μ nodes.
///
/// For each node j and degree n ∈ [m, n_max]:
/// * `p[j][n-m]`   = P̄ₙᵐ(μⱼ)
/// * `h[j][n-m]`   = (1 − μ²) dP̄ₙᵐ/dμ at μⱼ (the "cos φ · ∂/∂φ" factor
///   used by gradient and vorticity formulas)
#[derive(Debug, Clone)]
pub struct LegendreTable {
    pub m: usize,
    pub n_max: usize,
    n_nodes: usize,
    p: Vec<f64>,
    h: Vec<f64>,
}

impl LegendreTable {
    /// Tabulate for wavenumber `m`, degrees up to `n_max`, at `mu` nodes.
    pub fn new(m: usize, n_max: usize, mu: &[f64]) -> Self {
        assert!(n_max >= m);
        let n_nodes = mu.len();
        let width = n_max - m + 1;
        let mut p = vec![0.0; n_nodes * width];
        let mut h = vec![0.0; n_nodes * width];
        for (j, &x) in mu.iter().enumerate() {
            // Values up to n_max + 1 (the derivative formula needs one
            // extra degree).
            let vals = pbar_column(m, n_max + 1, x);
            for n in m..=n_max {
                p[j * width + (n - m)] = vals[n - m];
            }
            // (1-μ²) dP̄ₙᵐ/dμ = -n ε_{n+1}ᵐ P̄_{n+1}ᵐ + (n+1) εₙᵐ P̄_{n-1}ᵐ
            // with εₙᵐ = sqrt((n² − m²) / (4n² − 1)).
            for n in m..=n_max {
                let e_np1 = eps(n + 1, m);
                let term1 = -(n as f64) * e_np1 * vals[n + 1 - m];
                let term2 = if n > m {
                    (n as f64 + 1.0) * eps(n, m) * vals[n - 1 - m]
                } else {
                    0.0
                };
                h[j * width + (n - m)] = term1 + term2;
            }
        }
        LegendreTable {
            m,
            n_max,
            n_nodes,
            p,
            h,
        }
    }

    #[inline]
    fn width(&self) -> usize {
        self.n_max - self.m + 1
    }

    /// P̄ₙᵐ at node `j`.
    #[inline]
    pub fn p(&self, j: usize, n: usize) -> f64 {
        debug_assert!(j < self.n_nodes && n >= self.m && n <= self.n_max);
        self.p[j * self.width() + (n - self.m)]
    }

    /// (1 − μ²) dP̄ₙᵐ/dμ at node `j`.
    #[inline]
    pub fn h(&self, j: usize, n: usize) -> f64 {
        debug_assert!(j < self.n_nodes && n >= self.m && n <= self.n_max);
        self.h[j * self.width() + (n - self.m)]
    }

    /// Row of P̄ values at node `j` (degrees m..=n_max).
    #[inline]
    pub fn p_row(&self, j: usize) -> &[f64] {
        &self.p[j * self.width()..(j + 1) * self.width()]
    }

    /// Row of derivative values at node `j`.
    #[inline]
    pub fn h_row(&self, j: usize) -> &[f64] {
        &self.h[j * self.width()..(j + 1) * self.width()]
    }
}

#[inline]
fn eps(n: usize, m: usize) -> f64 {
    if n <= m {
        return 0.0;
    }
    let n2 = (n * n) as f64;
    let m2 = (m * m) as f64;
    ((n2 - m2) / (4.0 * n2 - 1.0)).sqrt()
}

/// Compute P̄ₙᵐ(x) for fixed m, n = m..=n_max, via the stable three-term
/// recurrence on fully normalized functions.
pub fn pbar_column(m: usize, n_max: usize, x: f64) -> Vec<f64> {
    let sin2 = (1.0 - x * x).max(0.0);
    let sin = sin2.sqrt();
    // Seed: P̄ₘᵐ = sqrt((2m+1)!!/(2m)!! / 2) sinᵐ — built up iteratively
    // to avoid overflow.
    let mut pmm = (0.5f64).sqrt(); // P̄₀⁰ = 1/√2  (∫ dμ (1/2) = 1)
    for k in 1..=m {
        pmm *= ((2 * k + 1) as f64 / (2 * k) as f64).sqrt() * sin;
    }
    let width = n_max - m + 1;
    let mut out = vec![0.0; width];
    out[0] = pmm;
    if width == 1 {
        return out;
    }
    // P̄_{m+1}ᵐ = μ √(2m+3) P̄ₘᵐ
    out[1] = x * ((2 * m + 3) as f64).sqrt() * pmm;
    for n in (m + 2)..=n_max {
        let a = 1.0 / eps(n, m);
        out[n - m] = a * (x * out[n - 1 - m] - eps(n - 1, m) * out[n - 2 - m]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use foam_grid::gauss::gauss_legendre;

    #[test]
    fn matches_low_order_closed_forms() {
        // P̄₀⁰ = 1/√2, P̄₁⁰ = √(3/2) μ, P̄₁¹ = √(3)/2 … with our
        // normalization ∫ P̄² dμ = 1.
        let x: f64 = 0.3;
        let c0 = pbar_column(0, 2, x);
        assert!((c0[0] - 0.5f64.sqrt()).abs() < 1e-14);
        assert!((c0[1] - (1.5f64).sqrt() * x).abs() < 1e-14);
        // P̄₂⁰ = √(5/2) (3μ²−1)/2
        assert!((c0[2] - (2.5f64).sqrt() * 0.5 * (3.0 * x * x - 1.0)).abs() < 1e-13);
        let c1 = pbar_column(1, 1, x);
        let sin = (1.0f64 - x * x).sqrt();
        assert!((c1[0] - (0.75f64).sqrt() * sin).abs() < 1e-14);
    }

    #[test]
    fn orthonormal_under_gaussian_quadrature() {
        let nlat = 24;
        let q = gauss_legendre(nlat);
        let m_max = 7usize;
        for m in 0..=m_max {
            let n_max = m + m_max; // rhomboidal-style range
            let t = LegendreTable::new(m, n_max, &q.nodes);
            for n1 in m..=n_max {
                for n2 in m..=n_max {
                    let s: f64 = (0..nlat)
                        .map(|j| q.weights[j] * t.p(j, n1) * t.p(j, n2))
                        .sum();
                    let expect = if n1 == n2 { 1.0 } else { 0.0 };
                    assert!((s - expect).abs() < 1e-11, "m={m} n1={n1} n2={n2}: {s}");
                }
            }
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let m = 3usize;
        let n_max = 9usize;
        let xs = [-0.8, -0.25, 0.0, 0.4, 0.77];
        let dh = 1e-6;
        for &x in &xs {
            let t = LegendreTable::new(m, n_max, &[x]);
            let lo = pbar_column(m, n_max, x - dh);
            let hi = pbar_column(m, n_max, x + dh);
            for n in m..=n_max {
                let fd = (hi[n - m] - lo[n - m]) / (2.0 * dh);
                let analytic = t.h(0, n) / (1.0 - x * x);
                assert!(
                    (fd - analytic).abs() < 1e-5 * (1.0 + analytic.abs()),
                    "m={m} n={n} x={x}: fd={fd} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn vanishes_at_poles_for_m_positive() {
        for m in 1..5 {
            let c = pbar_column(m, m + 4, 1.0);
            for v in c {
                assert_eq!(v, 0.0);
            }
        }
    }

    #[test]
    fn parity_symmetry() {
        // P̄ₙᵐ(−μ) = (−1)^{n+m} P̄ₙᵐ(μ).
        let x: f64 = 0.37;
        for m in 0..4usize {
            let plus = pbar_column(m, m + 6, x);
            let minus = pbar_column(m, m + 6, -x);
            for n in m..=(m + 6) {
                let sign = if (n + m) % 2 == 0 { 1.0 } else { -1.0 };
                assert!(
                    (minus[n - m] - sign * plus[n - m]).abs() < 1e-13,
                    "m={m} n={n}"
                );
            }
        }
    }
}
