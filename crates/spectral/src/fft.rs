//! Complex arithmetic and a mixed-radix FFT.
//!
//! The transform grid's longitude counts are smooth numbers (48 = 2⁴·3,
//! 128 = 2⁷), so a Cooley–Tukey factorization over the smallest prime
//! factor covers every case; a naive O(r²) combine handles any residual
//! prime factor, keeping the implementation fully general.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

use foam_ckpt::{ByteReader, CkptError, Codec};

/// A complex number (we avoid external crates by policy; see DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// e^{iθ}.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }

    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Multiplication by i (a quarter turn), cheaper than a full complex
    /// multiply in the derivative formulas.
    #[inline]
    pub fn mul_i(self) -> Self {
        Complex {
            re: -self.im,
            im: self.re,
        }
    }
}

impl Codec for Complex {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.re.encode(buf);
        self.im.encode(buf);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(Complex {
            re: f64::decode(r)?,
            im: f64::decode(r)?,
        })
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// A reusable FFT plan for length `n` (precomputed twiddle table).
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// twiddle[k] = e^{-2πik/n}
    twiddle: Vec<Complex>,
}

impl FftPlan {
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        let twiddle = (0..n)
            .map(|k| Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        FftPlan { n, twiddle }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The scratch length (in `Complex` elements) that every `_into`
    /// method of this plan accepts: `5 * len()`. Allocate it once and
    /// reuse it across calls — that is the whole point of the scratch
    /// API.
    ///
    /// ```
    /// use foam_spectral::fft::{Complex, FftPlan};
    /// let plan = FftPlan::new(16);
    /// let mut scratch = vec![Complex::ZERO; plan.scratch_len()];
    /// let x = vec![Complex::ONE; 16];
    /// let mut y = vec![Complex::ZERO; 16];
    /// plan.forward_into(&x, &mut y, &mut scratch);
    /// assert!((y[0].re - 16.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn scratch_len(&self) -> usize {
        5 * self.n
    }

    /// Forward DFT: X_k = Σ_j x_j e^{-2πijk/n} (no normalization).
    pub fn forward(&self, x: &[Complex]) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; self.n];
        let mut scratch = vec![Complex::ZERO; 2 * self.n];
        self.forward_into(x, &mut out, &mut scratch);
        out
    }

    /// Allocation-free [`FftPlan::forward`]: writes the transform into
    /// `out` using caller-provided `scratch` (at least `2 * len()`
    /// elements; [`FftPlan::scratch_len`] always suffices). Produces
    /// bit-identical results to `forward`.
    pub fn forward_into(&self, x: &[Complex], out: &mut [Complex], scratch: &mut [Complex]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(out.len(), self.n);
        assert!(scratch.len() >= 2 * self.n, "scratch too small");
        self.rec_into(x, 1, self.n, out, scratch);
    }

    /// Inverse DFT: x_j = (1/n) Σ_k X_k e^{+2πijk/n}.
    pub fn inverse(&self, x: &[Complex]) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; self.n];
        let mut scratch = vec![Complex::ZERO; 3 * self.n];
        self.inverse_into(x, &mut out, &mut scratch);
        out
    }

    /// Allocation-free [`FftPlan::inverse`] (`scratch` needs at least
    /// `3 * len()` elements; [`FftPlan::scratch_len`] always suffices).
    pub fn inverse_into(&self, x: &[Complex], out: &mut [Complex], scratch: &mut [Complex]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(out.len(), self.n);
        assert!(scratch.len() >= 3 * self.n, "scratch too small");
        // Conjugate trick: IDFT(x) = conj(DFT(conj(x))) / n.
        let (conj, rest) = scratch.split_at_mut(self.n);
        for (c, v) in conj.iter_mut().zip(x) {
            *c = v.conj();
        }
        self.rec_into(conj, 1, self.n, out, rest);
        let s = 1.0 / self.n as f64;
        for c in out.iter_mut() {
            *c = c.conj().scale(s);
        }
    }

    /// Recursive mixed-radix Cooley–Tukey into a caller buffer. `x` is
    /// viewed with `stride`; `n` is the logical length of this
    /// sub-transform. `scratch` must hold at least `2 * n` elements:
    /// the level uses `n` for its sub-transform outputs and lends the
    /// rest downward (the geometric sum n + n/2 + … stays under 2n).
    fn rec_into(
        &self,
        x: &[Complex],
        stride: usize,
        n: usize,
        out: &mut [Complex],
        scratch: &mut [Complex],
    ) {
        if n == 1 {
            out[0] = x[0];
            return;
        }
        let r = smallest_prime_factor(n);
        let m = n / r;
        // r sub-transforms of length m over the decimated sequences.
        let (subs, rest) = scratch.split_at_mut(n);
        for j in 0..r {
            self.rec_into(
                &x[j * stride..],
                stride * r,
                m,
                &mut subs[j * m..(j + 1) * m],
                rest,
            );
        }
        // Combine: X[s + t m] = Σ_j W_n^{j(s+tm)} Y_j[s].
        let tw_step = self.n / n; // twiddle table is for the full length
        for s in 0..m {
            for t in 0..r {
                let k = s + t * m;
                let mut acc = Complex::ZERO;
                for j in 0..r {
                    let idx = (j * k) % n * tw_step;
                    acc += self.twiddle[idx] * subs[j * m + s];
                }
                out[k] = acc;
            }
        }
    }
}

fn smallest_prime_factor(n: usize) -> usize {
    for p in [2usize, 3, 5, 7] {
        if n.is_multiple_of(p) {
            return p;
        }
    }
    let mut p = 11;
    while p * p <= n {
        if n.is_multiple_of(p) {
            return p;
        }
        p += 2;
    }
    n
}

/// Real analysis on a longitude circle: given `nlon` real samples,
/// return the one-sided Fourier coefficients
/// c_m = (1/nlon) Σ_i f_i e^{-imλ_i} for m = 0..=m_max, so that
/// f_i = Re[c_0 + 2 Σ_{m≥1} c_m e^{imλ_i}] for band-limited f.
pub fn real_analysis(plan: &FftPlan, row: &[f64], m_max: usize) -> Vec<Complex> {
    let mut out = vec![Complex::ZERO; m_max + 1];
    let mut scratch = vec![Complex::ZERO; 4 * plan.len()];
    real_analysis_into(plan, row, &mut out, &mut scratch);
    out
}

/// Allocation-free [`real_analysis`]: fills `out` (length `m_max + 1`)
/// with the one-sided coefficients, using caller scratch of at least
/// `4 * plan.len()` elements ([`FftPlan::scratch_len`] always
/// suffices). Bit-identical to the allocating form.
pub fn real_analysis_into(
    plan: &FftPlan,
    row: &[f64],
    out: &mut [Complex],
    scratch: &mut [Complex],
) {
    let n = plan.len();
    assert_eq!(row.len(), n);
    assert!(!out.is_empty() && out.len() <= n);
    assert!(scratch.len() >= 4 * n, "scratch too small");
    let (x, rest) = scratch.split_at_mut(n);
    for (c, &v) in x.iter_mut().zip(row) {
        *c = Complex::new(v, 0.0);
    }
    let (y, rec) = rest.split_at_mut(n);
    plan.rec_into(x, 1, n, y, rec);
    let s = 1.0 / n as f64;
    for (o, c) in out.iter_mut().zip(y.iter()) {
        *o = c.scale(s);
    }
}

/// Real synthesis on a longitude circle: inverse of [`real_analysis`].
pub fn real_synthesis(plan: &FftPlan, coeffs: &[Complex], out: &mut [f64]) {
    let mut scratch = vec![Complex::ZERO; 5 * plan.len()];
    real_synthesis_into(plan, coeffs, out, &mut scratch);
}

/// Allocation-free [`real_synthesis`] using caller scratch of at least
/// `5 * plan.len()` elements (exactly [`FftPlan::scratch_len`]).
/// Bit-identical to the allocating form.
pub fn real_synthesis_into(
    plan: &FftPlan,
    coeffs: &[Complex],
    out: &mut [f64],
    scratch: &mut [Complex],
) {
    let n = plan.len();
    assert_eq!(out.len(), n);
    assert!(scratch.len() >= 5 * n, "scratch too small");
    let (spec, rest) = scratch.split_at_mut(n);
    spec.fill(Complex::ZERO);
    // Build the two-sided spectrum of a real signal: X_m = n c_m,
    // X_{n-m} = n conj(c_m).
    let m_max = coeffs.len() - 1;
    assert!(2 * m_max < n, "synthesis requires nlon > 2*m_max");
    spec[0] = coeffs[0].scale(n as f64);
    for m in 1..=m_max {
        spec[m] = coeffs[m].scale(n as f64);
        spec[n - m] = coeffs[m].conj().scale(n as f64);
    }
    let (y, rec) = rest.split_at_mut(n);
    plan.inverse_into(spec, y, rec);
    for (o, c) in out.iter_mut().zip(y.iter()) {
        *o = c.re;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    acc +=
                        v * Complex::cis(-2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64);
                }
                acc
            })
            .collect()
    }

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex> {
        // Small deterministic LCG; avoids pulling rand into unit tests.
        let mut s = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                let a = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                let b = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                Complex::new(a, b)
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft_for_mixed_sizes() {
        for n in [1usize, 2, 3, 4, 5, 6, 8, 12, 15, 16, 20, 48, 49, 128] {
            let plan = FftPlan::new(n);
            let x = rand_signal(n, n as u64);
            let fast = plan.forward(&x);
            let slow = naive_dft(&x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).abs() < 1e-9 * (n as f64), "n={n}");
            }
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [2usize, 3, 7, 24, 48, 128] {
            let plan = FftPlan::new(n);
            let x = rand_signal(n, 42 + n as u64);
            let y = plan.inverse(&plan.forward(&x));
            for (a, b) in x.iter().zip(&y) {
                assert!((*a - *b).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn parseval_identity() {
        let n = 48;
        let plan = FftPlan::new(n);
        let x = rand_signal(n, 7);
        let y = plan.forward(&x);
        let ex: f64 = x.iter().map(|c| c.norm_sq()).sum();
        let ey: f64 = y.iter().map(|c| c.norm_sq()).sum::<f64>() / n as f64;
        assert!((ex - ey).abs() < 1e-10 * ex);
    }

    #[test]
    fn delta_transforms_to_ones() {
        let n = 12;
        let plan = FftPlan::new(n);
        let mut x = vec![Complex::ZERO; n];
        x[0] = Complex::ONE;
        let y = plan.forward(&x);
        for c in y {
            assert!((c - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn real_roundtrip_bandlimited() {
        let n = 48;
        let m_max = 15;
        let plan = FftPlan::new(n);
        // A band-limited real signal.
        let row: Vec<f64> = (0..n)
            .map(|i| {
                let lam = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                1.5 + 0.7 * (3.0 * lam).cos() - 2.0 * (15.0 * lam).sin() + 0.1 * (lam).sin()
            })
            .collect();
        let c = real_analysis(&plan, &row, m_max);
        let mut back = vec![0.0; n];
        real_synthesis(&plan, &c, &mut back);
        for (a, b) in row.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn real_analysis_extracts_known_coefficients() {
        let n = 16;
        let plan = FftPlan::new(n);
        let row: Vec<f64> = (0..n)
            .map(|i| {
                let lam = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                2.0 + 3.0 * (2.0 * lam).cos() + 4.0 * (5.0 * lam).sin()
            })
            .collect();
        let c = real_analysis(&plan, &row, 7);
        assert!((c[0].re - 2.0).abs() < 1e-12 && c[0].im.abs() < 1e-12);
        // a cos(mλ) → c_m = a/2 ; b sin(mλ) → c_m = -i b/2.
        assert!((c[2].re - 1.5).abs() < 1e-12 && c[2].im.abs() < 1e-12);
        assert!(c[5].re.abs() < 1e-12 && (c[5].im + 2.0).abs() < 1e-12);
        assert!(c[3].abs() < 1e-12);
    }

    #[test]
    fn complex_helpers() {
        let z = Complex::new(1.0, 2.0);
        assert_eq!(z.mul_i(), Complex::new(-2.0, 1.0));
        assert_eq!(z.conj(), Complex::new(1.0, -2.0));
        assert!((Complex::cis(std::f64::consts::PI) + Complex::ONE).abs() < 1e-15);
        assert!((z.abs() - 5.0f64.sqrt()).abs() < 1e-15);
    }
}
