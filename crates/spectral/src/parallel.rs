//! The latitude-distributed spectral transform.
//!
//! PCCM2 parallelizes CCM2 by decomposing latitudes across processors;
//! the Legendre analysis then needs a *global* combine — the
//! communication-intensive step the paper highlights. Here each rank owns
//! a contiguous block of Gaussian latitudes, accumulates its rows'
//! quadrature contributions, and an `allreduce` sum completes the
//! transform, leaving the full spectral state replicated on every rank
//! (synthesis is then purely local).

use foam_grid::Field2;
use foam_mpi::{Comm, ReduceOp};

use crate::fft::Complex;
use crate::transform::{SpectralField, SpectralWorkspace, SphericalTransform, SynthKind};

/// A [`SphericalTransform`] plus a latitude decomposition for one rank.
pub struct ParTransform {
    pub base: SphericalTransform,
    /// First owned latitude row (inclusive).
    pub j0: usize,
    /// Last owned latitude row (exclusive).
    pub j1: usize,
}

/// Contiguous block decomposition of `n` rows over `size` ranks: rank `r`
/// owns `[n·r/size, n·(r+1)/size)`. Balanced to within one row.
pub fn block_range(n: usize, size: usize, rank: usize) -> (usize, usize) {
    (n * rank / size, n * (rank + 1) / size)
}

impl ParTransform {
    /// Bind a transform to this rank's block of latitudes.
    pub fn new(base: SphericalTransform, comm: &Comm) -> Self {
        let (j0, j1) = block_range(base.grid.nlat, comm.size(), comm.rank());
        ParTransform { base, j0, j1 }
    }

    /// Number of rows this rank owns.
    pub fn n_local_rows(&self) -> usize {
        self.j1 - self.j0
    }

    /// Distributed analysis: `local` is this rank's `(nlon × local_rows)`
    /// slab; every rank returns the complete spectral field.
    pub fn analyze(&self, comm: &Comm, local: &Field2) -> SpectralField {
        let mut ws = SpectralWorkspace::new(&self.base);
        let mut out = SpectralField::zeros(self.base.trunc);
        self.analyze_into(comm, local, &mut ws, &mut out);
        out
    }

    /// Allocation-free [`ParTransform::analyze`]: overwrites `out` with
    /// the complete spectral field, borrowing all scratch (accumulator,
    /// reduction buffer, FFT scratch) from `ws`. Bit-identical to the
    /// allocating form.
    pub fn analyze_into(
        &self,
        comm: &Comm,
        local: &Field2,
        ws: &mut SpectralWorkspace,
        out: &mut SpectralField,
    ) {
        let _t = foam_telemetry::scope("spectral");
        assert_eq!(local.ny(), self.n_local_rows());
        assert_eq!(out.trunc, self.base.trunc);
        let SpectralWorkspace { fft, cm, acc, flat } = ws;
        acc.fill(Complex::ZERO);
        self.base
            .accumulate_rows_scratch(local, self.j0, self.j1, acc, cm, fft);
        // Global combine: flatten to interleaved re/im and sum-reduce.
        for (pair, c) in flat.chunks_exact_mut(2).zip(acc.iter()) {
            pair[0] = c.re;
            pair[1] = c.im;
        }
        comm.allreduce_mut(flat, ReduceOp::Sum);
        for (c, pair) in out.data.iter_mut().zip(flat.chunks_exact(2)) {
            *c = Complex::new(pair[0], pair[1]);
        }
    }

    /// Local synthesis of this rank's rows (no communication).
    pub fn synthesize(&self, spec: &SpectralField) -> Field2 {
        let _t = foam_telemetry::scope("spectral");
        self.base
            .synthesize_rows(spec, self.j0, self.j1, SynthKind::Value)
    }

    /// Allocation-free [`ParTransform::synthesize`]: overwrites the
    /// `(nlon × local_rows)` slab `out`. Bit-identical to the
    /// allocating form, as are the other `_into` synthesis variants.
    pub fn synthesize_into(
        &self,
        spec: &SpectralField,
        ws: &mut SpectralWorkspace,
        out: &mut Field2,
    ) {
        let _t = foam_telemetry::scope("spectral");
        self.base
            .synthesize_rows_into(spec, self.j0, self.j1, SynthKind::Value, ws, out);
    }

    /// Local synthesis of ∂f/∂λ.
    pub fn synthesize_dlambda(&self, spec: &SpectralField) -> Field2 {
        let _t = foam_telemetry::scope("spectral");
        self.base
            .synthesize_rows(spec, self.j0, self.j1, SynthKind::DLambda)
    }

    /// Allocation-free [`ParTransform::synthesize_dlambda`].
    pub fn synthesize_dlambda_into(
        &self,
        spec: &SpectralField,
        ws: &mut SpectralWorkspace,
        out: &mut Field2,
    ) {
        let _t = foam_telemetry::scope("spectral");
        self.base
            .synthesize_rows_into(spec, self.j0, self.j1, SynthKind::DLambda, ws, out);
    }

    /// Local synthesis of cos φ · ∂f/∂φ.
    pub fn synthesize_cosgrad(&self, spec: &SpectralField) -> Field2 {
        let _t = foam_telemetry::scope("spectral");
        self.base
            .synthesize_rows(spec, self.j0, self.j1, SynthKind::CosGrad)
    }

    /// Allocation-free [`ParTransform::synthesize_cosgrad`].
    pub fn synthesize_cosgrad_into(
        &self,
        spec: &SpectralField,
        ws: &mut SpectralWorkspace,
        out: &mut Field2,
    ) {
        let _t = foam_telemetry::scope("spectral");
        self.base
            .synthesize_rows_into(spec, self.j0, self.j1, SynthKind::CosGrad, ws, out);
    }

    /// Gather a distributed grid field to rank 0 (diagnostics/coupling).
    pub fn gather_grid(&self, comm: &Comm, local: &Field2) -> Option<Field2> {
        let slabs = comm.gather(local.as_slice().to_vec(), 0);
        slabs.map(|parts| {
            let nlon = self.base.grid.nlon;
            let mut data = Vec::with_capacity(nlon * self.base.grid.nlat);
            for p in parts {
                data.extend_from_slice(&p);
            }
            Field2::from_vec(nlon, self.base.grid.nlat, data)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truncation::Truncation;
    use foam_grid::AtmGrid;
    use foam_mpi::Universe;

    fn serial() -> SphericalTransform {
        SphericalTransform::new(AtmGrid::new(24, 16), Truncation::rhomboidal(5))
    }

    fn test_field(nlon: usize, nlat: usize, grid: &AtmGrid) -> Field2 {
        Field2::from_fn(nlon, nlat, |i, j| {
            let lam = grid.lons[i];
            let mu = grid.mu[j];
            (2.0 * lam).sin() * (1.0 - mu * mu) + 0.3 * mu + (lam.cos() * mu * mu)
        })
    }

    #[test]
    fn block_ranges_tile_exactly() {
        for n in [16usize, 40, 41] {
            for size in [1usize, 2, 3, 5, 8] {
                let mut covered = 0;
                for r in 0..size {
                    let (a, b) = block_range(n, size, r);
                    assert_eq!(a, covered);
                    covered = b;
                    assert!(b - a <= n / size + 1);
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn distributed_analysis_matches_serial() {
        for p in [1usize, 2, 3, 4] {
            let outs = Universe::run(p, |comm| {
                let t = ParTransform::new(serial(), comm);
                let full = test_field(t.base.grid.nlon, t.base.grid.nlat, &t.base.grid);
                // Carve out this rank's slab.
                let mut local = Field2::zeros(t.base.grid.nlon, t.n_local_rows());
                for j in t.j0..t.j1 {
                    local.row_mut(j - t.j0).copy_from_slice(full.row(j));
                }
                let spec = t.analyze(comm, &local);
                spec.data
                    .iter()
                    .flat_map(|c| [c.re, c.im])
                    .collect::<Vec<f64>>()
            });
            let st = serial();
            let full = test_field(st.grid.nlon, st.grid.nlat, &st.grid);
            let expect: Vec<f64> = st
                .analyze(&full)
                .data
                .iter()
                .flat_map(|c| [c.re, c.im])
                .collect();
            for r in 0..p {
                for (a, b) in outs.results[r].iter().zip(&expect) {
                    assert!((a - b).abs() < 1e-11, "p={p} rank={r}");
                }
            }
        }
    }

    /// A band-limited field: synthesized from a handful of spectral modes
    /// (arbitrary non-band-limited grid functions would only round-trip
    /// up to projection).
    fn bandlimited_field(st: &SphericalTransform) -> Field2 {
        let mut spec = SpectralField::zeros(st.trunc);
        spec.set(0, 0, Complex::new(1.3, 0.0));
        spec.set(0, 3, Complex::new(-0.4, 0.0));
        spec.set(2, 4, Complex::new(0.9, 0.2));
        spec.set(5, 7, Complex::new(-0.1, 0.8));
        st.synthesize(&spec)
    }

    #[test]
    fn distributed_roundtrip_and_gather() {
        let out = Universe::run(3, |comm| {
            let t = ParTransform::new(serial(), comm);
            let full = bandlimited_field(&t.base);
            let mut local = Field2::zeros(t.base.grid.nlon, t.n_local_rows());
            for j in t.j0..t.j1 {
                local.row_mut(j - t.j0).copy_from_slice(full.row(j));
            }
            let spec = t.analyze(comm, &local);
            let back_local = t.synthesize(&spec);
            let gathered = t.gather_grid(comm, &back_local);
            if comm.rank() == 0 {
                let g = gathered.unwrap();
                let mut max_err = 0.0f64;
                for (a, b) in g.as_slice().iter().zip(full.as_slice()) {
                    max_err = max_err.max((a - b).abs());
                }
                max_err
            } else {
                0.0
            }
        });
        assert!(out.results[0] < 1e-10, "roundtrip error {}", out.results[0]);
    }
}
