//! `foam-spectral` — the spectral transform method.
//!
//! The numerical core of FOAM's atmosphere (PCCM2) is the spectral
//! transform: fields live both as spherical-harmonic coefficients under a
//! **rhomboidal truncation** (R15 in the paper) and as values on a
//! Gaussian grid; nonlinear terms are computed on the grid and transformed
//! back. The paper notes that, in parallel, the Legendre transform is the
//! part that "introduces a need for global communication" — reproduced
//! here by [`ParTransform`], which decomposes latitudes across ranks and
//! completes the forward transform with a global reduction over
//! `foam-mpi`, exactly the structure of the Argonne/Oak Ridge parallel
//! transform algorithms the paper cites.
//!
//! Everything is built from scratch:
//! * [`fft`] — mixed-radix complex FFT and the real transforms used on
//!   longitude circles,
//! * [`legendre`] — fully normalized associated Legendre functions and
//!   their μ-derivatives,
//! * [`Truncation`] — the rhomboidal (m, n) index set,
//! * [`SphericalTransform`] — serial analysis/synthesis plus spectral-space
//!   calculus (Laplacian, its inverse, hyperdiffusion, gradients),
//! * [`ParTransform`] — the latitude-distributed transform,
//! * [`SpectralWorkspace`] — pre-allocated scratch making every hot
//!   transform allocation-free via the `_ws`/`_into` method variants
//!   (see PERFORMANCE.md for the zero-churn rule they implement).

pub mod fft;
pub mod legendre;
mod parallel;
mod transform;
mod truncation;

pub use fft::Complex;
pub use parallel::ParTransform;
pub use transform::{SpectralField, SpectralWorkspace, SphericalTransform, SynthKind};
pub use truncation::Truncation;
