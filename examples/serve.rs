//! FOAM as a service: boot the simulation server and leave it running.
//!
//! ```sh
//! cargo run --release -p foam-examples --bin serve -- \
//!     [--addr 127.0.0.1:7341] [--root DIR] [--workers N]
//! ```
//!
//! Then, from another terminal:
//!
//! ```sh
//! # submit a tiny 4-day run (the job id is the content digest)
//! curl -s -X POST localhost:7341/v1/jobs \
//!      -d '{"preset":"tiny","seed":42,"days":4}'
//!
//! # stream its progress, one JSON line per coupling interval
//! curl -sN localhost:7341/v1/jobs/<id>/progress
//!
//! # fetch the deterministic report (resubmitting the same spec is a
//! # cache hit: same bytes, no model run)
//! curl -s localhost:7341/v1/jobs/<id>/report
//! ```
//!
//! Kill the server mid-job and start it again on the same `--root`: it
//! rediscovers the job from its `spec.json`, resumes from the newest
//! checkpoint, and converges to the same report bits.

use foam_server::{Server, ServerConfig};

fn flag_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let addr: String = flag_or("--addr", "127.0.0.1:7341".to_string());
    let root: String = flag_or(
        "--root",
        std::env::temp_dir()
            .join("foam-server")
            .to_string_lossy()
            .into_owned(),
    );
    let workers: usize = flag_or("--workers", 2);

    let mut cfg = ServerConfig::new(&root);
    cfg.workers = workers;
    let server = Server::start(cfg, &addr).expect("bind server address");
    println!("foam-server listening on http://{}", server.addr());
    println!("state root: {root}");
    println!(
        "try: curl -s -X POST {}/v1/jobs -d '{{\"preset\":\"tiny\",\"seed\":42,\"days\":4}}'",
        server.addr()
    );

    // Serve until the process is killed; jobs in flight at that moment
    // are resumed by the next start on the same root.
    loop {
        std::thread::park();
    }
}
