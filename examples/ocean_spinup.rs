//! Stand-alone ocean spin-up: the Wisconsin ocean model driven by
//! idealized wind stress and SST restoring — the kind of run used to
//! benchmark the ocean at "105,000 times real time" in the paper — plus
//! a live demonstration of the three throughput techniques.
//!
//! ```sh
//! cargo run --release -p foam-examples --bin ocean_spinup [days]
//! ```

use foam_grid::World;
use foam_ocean::{OceanConfig, OceanForcing, OceanModel};
use foam_stats::ascii::render_map;
use std::time::Instant;

fn main() {
    let days: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30.0);

    let world = World::earthlike();
    // The paper's full ocean resolution: 128 × 128 × 16.
    let cfg = OceanConfig::default();
    let model = OceanModel::new(cfg, &world);
    let mut state = model.init_state(&world);

    println!(
        "ocean spin-up: {}×{}×{} Mercator grid, slowdown α = {}, {days} simulated days",
        model.cfg.nx, model.cfg.ny, model.cfg.nz, model.cfg.slowdown
    );
    println!(
        "slowed external wave speed: {:.0} m/s (physical would be {:.0} m/s); \
         barotropic CFL dt: {:.0} s",
        model.baro_sys.wave_speed(),
        (foam_grid::constants::GRAVITY * model.cfg.depth).sqrt(),
        model.baro_sys.max_dt()
    );

    let t0 = Instant::now();
    let n_days = days as usize;
    for d in 0..n_days {
        let forcing = OceanForcing::climatological(&model.grid, &world, &model.sst(&state));
        for _ in 0..4 {
            model.step_coupled(&mut state, &forcing, 21_600.0);
        }
        if (d + 1) % 10 == 0 || d + 1 == n_days {
            println!(
                "day {:>4}: mean SST {:.2} °C, max |u| {:.2} m/s, peak MOC {:.1} Sv",
                d + 1,
                model.mean_sst(&state),
                model.max_speed(&state),
                model.max_overturning(&state)
            );
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let speedup = days * 86_400.0 / wall;
    println!();
    println!(
        "ocean-only throughput: {speedup:.0}× real time on one rank \
         (paper: 105,000× on 64 SP2 nodes)"
    );
    println!();
    println!(
        "{}",
        render_map(
            &model.sst(&state),
            Some(&model.mask),
            "spun-up SST (°C), L = land"
        )
    );
}
