//! The paper's scientific payoff in miniature: run the coupled model for
//! many simulated years with **streaming** statistics, and look for the
//! low-frequency two-basin variability of Figure 4 (VARIMAX-rotated EOFs
//! of low-pass-filtered SST anomalies) — without ever retaining the
//! monthly history. Statistics memory stays `O(grid)` no matter how many
//! years you pass.
//!
//! ```sh
//! cargo run --release -p foam-examples --bin century_variability [years]
//! ```
//!
//! With the reduced century configuration a simulated decade takes a few
//! seconds; pass more years (the paper ran > 500) as wall time allows.

use foam::{run_coupled, FoamConfig, World};
use foam_stats::ascii::{render_diff_map, sparkline};

fn main() {
    let years: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);

    let cfg = FoamConfig::century(11);
    println!("running {years} simulated years of the coupled model (streaming statistics)…");
    let out = run_coupled(&cfg, years * 360.0);
    let stream = out.stream.as_ref().expect("the century config streams");
    let n_months = stream.months();
    println!(
        "done: {n_months} months streamed into O(grid) state at {:.0}× real time",
        out.model_speedup
    );

    // --- EOF + VARIMAX (Figure 4), straight off the stream. -------------
    let Some(analysis) = stream.analyze_variability(6) else {
        println!("need at least two years of monthly data for the analysis");
        return;
    };
    let rot = analysis.varimax(4.min(analysis.eof.patterns.len()));
    if rot.patterns.is_empty() {
        println!("variability too weak to decompose (run longer)");
        return;
    }
    let grid = foam_grid::OceanGrid::mercator(cfg.ocean.nx, cfg.ocean.ny, cfg.ocean.lat_max_deg);
    let weights = stream.weights();
    let mask: Vec<bool> = weights.iter().map(|&w| w > 0.0).collect();
    println!();
    println!(
        "leading VARIMAX mode: {:.1} % of low-passed variance (paper: 15 % at 60 months); \
         sketch discarded {:.2e} of raw variability",
        100.0 * rot.variance_fraction[0],
        stream.discarded_fraction()
    );
    let pat = foam::Field2::from_vec(grid.nx, grid.ny, rot.patterns[0].clone());
    println!(
        "{}",
        render_diff_map(
            &pat,
            Some(&mask),
            "Figure-4-style spatial pattern (SST loading)"
        )
    );
    println!("temporal pattern (PC 1): {}", sparkline(&rot.pcs[0], 72));

    // Two-basin diagnostic: correlation of N. Atlantic vs N. Pacific box
    // means of the filtered anomalies, reconstructed from the stream's
    // coefficient record via the linearity of the analysis transform.
    let world = World::earthlike();
    let box_profile = |basin: foam_grid::Basin| -> Vec<f64> {
        let mut profile = vec![0.0; weights.len()];
        let mut den = 0.0;
        for (s, p) in profile.iter_mut().enumerate() {
            if weights[s] > 0.0 {
                let (i, j) = (s % grid.nx, s / grid.nx);
                if world.basin(grid.lons[i], grid.lats[j]) == basin
                    && (25.0..60.0).contains(&grid.lats[j].to_degrees())
                {
                    *p = weights[s];
                    den += weights[s];
                }
            }
        }
        for p in profile.iter_mut() {
            *p /= den.max(1e-12);
        }
        profile
    };
    let natl = analysis.series(&box_profile(foam_grid::Basin::Atlantic));
    let npac = analysis.series(&box_profile(foam_grid::Basin::Pacific));
    let r = foam_stats::correlation(&natl, &npac);
    println!();
    println!(
        "North Atlantic × North Pacific low-passed SST correlation: r = {r:.2} \
         (the paper's 'until recently unanticipated' two-basin link)"
    );
}
