//! The paper's scientific payoff in miniature: run the coupled model for
//! many simulated years, collect monthly SST, and look for the
//! low-frequency two-basin variability of Figure 4 (VARIMAX-rotated EOFs
//! of low-pass-filtered SST anomalies).
//!
//! ```sh
//! cargo run --release -p foam-examples --bin century_variability [years]
//! ```
//!
//! With the default reduced configuration a simulated decade takes on the
//! order of a minute; pass more years (the paper ran > 500) as wall time
//! allows.

use foam::{run_coupled, FoamConfig, OceanModel, World};
use foam_stats::ascii::{render_diff_map, sparkline};
use foam_stats::{anomalies_monthly, detrend, eof_analysis, lanczos_lowpass, varimax};

fn main() {
    let years: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);

    let mut cfg = FoamConfig::tiny(11);
    cfg.collect_monthly_sst = true;
    println!("running {years} simulated years of the coupled model…");
    let out = run_coupled(&cfg, years * 360.0);
    let n_months = out.monthly_sst.len();
    println!(
        "done: {n_months} monthly SST fields at {:.0}× real time",
        out.model_speedup
    );
    if n_months < 24 {
        println!("need at least two years of monthly data for the analysis");
        return;
    }

    // --- Build area-weighted anomaly matrix over sea points. -----------
    let world = World::earthlike();
    let grid = foam_grid::OceanGrid::mercator(cfg.ocean.nx, cfg.ocean.ny, cfg.ocean.lat_max_deg);
    let mask = OceanModel::effective_sea_mask(&cfg.ocean, &world);
    let n_s = grid.len();
    let weights: Vec<f64> = (0..n_s)
        .map(|k| {
            if mask[k] {
                grid.cell_area(k % grid.nx, k / grid.nx) / 1.0e12
            } else {
                0.0
            }
        })
        .collect();

    // Per-point monthly anomaly series, detrended, low-pass filtered.
    // (Low-pass period scales down for short demo runs; the paper uses
    // 60 months on multi-century output.)
    let lp_period = (n_months as f64 / 4.0).clamp(6.0, 60.0);
    let mut data = vec![vec![0.0; n_s]; n_months];
    for s in 0..n_s {
        if weights[s] == 0.0 {
            continue;
        }
        let series: Vec<f64> = out.monthly_sst.iter().map(|f| f.as_slice()[s]).collect();
        let mut anom = anomalies_monthly(&series);
        detrend(&mut anom);
        let low = lanczos_lowpass(&anom, lp_period);
        for (t, v) in low.into_iter().enumerate() {
            data[t][s] = v;
        }
    }

    // --- EOF + VARIMAX (Figure 4). --------------------------------------
    let eof = eof_analysis(&data, &weights, 6);
    let rot = varimax(&data, &weights, &eof, 4.min(eof.patterns.len()));
    if rot.patterns.is_empty() {
        println!("variability too weak to decompose (run longer)");
        return;
    }
    println!();
    println!(
        "leading VARIMAX mode: {:.1} % of {:.0}-month low-passed variance \
         (paper: 15 % at 60 months)",
        100.0 * rot.variance_fraction[0],
        lp_period
    );
    let pat = foam::Field2::from_vec(grid.nx, grid.ny, rot.patterns[0].clone());
    println!(
        "{}",
        render_diff_map(
            &pat,
            Some(&mask),
            "Figure-4-style spatial pattern (SST loading)"
        )
    );
    println!("temporal pattern (PC 1): {}", sparkline(&rot.pcs[0], 72));

    // Two-basin diagnostic: correlation of N. Atlantic vs N. Pacific box
    // means of the filtered anomalies.
    let boxed_series = |basin: foam_grid::Basin| -> Vec<f64> {
        (0..n_months)
            .map(|t| {
                let mut num = 0.0;
                let mut den = 0.0;
                for s in 0..n_s {
                    if weights[s] > 0.0 {
                        let (i, j) = (s % grid.nx, s / grid.nx);
                        let latd = grid.lats[j].to_degrees();
                        if world.basin(grid.lons[i], grid.lats[j]) == basin
                            && (25.0..60.0).contains(&latd)
                        {
                            num += weights[s] * data[t][s];
                            den += weights[s];
                        }
                    }
                }
                num / den.max(1e-12)
            })
            .collect()
    };
    let natl = boxed_series(foam_grid::Basin::Atlantic);
    let npac = boxed_series(foam_grid::Basin::Pacific);
    let r = foam_stats::correlation(&natl, &npac);
    println!();
    println!(
        "North Atlantic × North Pacific low-passed SST correlation: r = {r:.2} \
         (the paper's 'until recently unanticipated' two-basin link)"
    );
}
