//! Quickstart: run the coupled model for a few simulated days and print
//! what FOAM is about — the model speedup — plus a glance at the SST.
//!
//! ```sh
//! cargo run --release -p foam-examples --bin quickstart [days] [--telemetry report.json]
//! ```
//!
//! With `--telemetry <path>` the run collects phase timers and counters
//! and writes the cross-rank JSON report there (see DESIGN.md §9).

use foam::{run_coupled, FoamConfig, TelemetryConfig};
use foam_stats::ascii::render_map;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let days: f64 = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(3.0);
    let telemetry_path = args
        .iter()
        .position(|a| a == "--telemetry")
        .and_then(|i| args.get(i + 1).cloned());

    // The reduced demo configuration (R5 atmosphere, 32×24 ocean, 2
    // atmosphere ranks + 1 ocean rank). Swap in `FoamConfig::paper(16, 7)`
    // for the paper's production 17-node setup.
    let mut cfg = FoamConfig::tiny(7);
    if let Some(path) = &telemetry_path {
        cfg.telemetry = TelemetryConfig::to_file(path);
    }

    println!(
        "FOAM-RS quickstart: {} atmosphere rank(s) + 1 ocean rank, {days} simulated day(s)…",
        cfg.n_atm_ranks
    );
    let out = run_coupled(&cfg, days);

    println!();
    println!(
        "simulated {:.1} days in {:.2} s wall → model speedup {:.0}× real time",
        out.sim_seconds / 86_400.0,
        out.wall_seconds,
        out.model_speedup
    );
    println!(
        "mean SST: start {:.2} °C → end {:.2} °C; sea-ice fraction {:.1} %",
        out.mean_sst_series.first().unwrap(),
        out.mean_sst_series.last().unwrap(),
        100.0 * out.ice_fraction
    );
    println!();
    let world = foam::World::earthlike();
    let mask = foam::OceanModel::effective_sea_mask(&cfg.ocean, &world);
    println!(
        "{}",
        render_map(
            &out.final_sst,
            Some(&mask),
            "Sea surface temperature (°C), L = land"
        )
    );
}
