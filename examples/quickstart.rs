//! Quickstart: run the coupled model for a few simulated days and print
//! what FOAM is about — the model speedup — plus a glance at the SST.
//!
//! ```sh
//! cargo run --release -p foam-examples --bin quickstart [days]
//! ```

use foam::{run_coupled, FoamConfig};
use foam_stats::ascii::render_map;

fn main() {
    let days: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3.0);

    // The reduced demo configuration (R5 atmosphere, 32×24 ocean, 2
    // atmosphere ranks + 1 ocean rank). Swap in `FoamConfig::paper(16, 7)`
    // for the paper's production 17-node setup.
    let cfg = FoamConfig::tiny(7);

    println!(
        "FOAM-RS quickstart: {} atmosphere rank(s) + 1 ocean rank, {days} simulated day(s)…",
        cfg.n_atm_ranks
    );
    let out = run_coupled(&cfg, days);

    println!();
    println!(
        "simulated {:.1} days in {:.2} s wall → model speedup {:.0}× real time",
        out.sim_seconds / 86_400.0,
        out.wall_seconds,
        out.model_speedup
    );
    println!(
        "mean SST: start {:.2} °C → end {:.2} °C; sea-ice fraction {:.1} %",
        out.mean_sst_series.first().unwrap(),
        out.mean_sst_series.last().unwrap(),
        100.0 * out.ice_fraction
    );
    println!();
    let world = foam::World::earthlike();
    let mask = foam::OceanModel::effective_sea_mask(&cfg.ocean, &world);
    println!(
        "{}",
        render_map(
            &out.final_sst,
            Some(&mask),
            "Sea surface temperature (°C), L = land"
        )
    );
}
