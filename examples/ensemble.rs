//! Run a small perturbed-initial-condition ensemble — with an optional
//! injected fault, to watch a member die mid-run and recover from its
//! checkpoint.
//!
//! ```sh
//! cargo run --release -p foam-examples --bin ensemble -- \
//!     [--members N] [--workers W] [--days D] [--fault-plan M]
//! ```
//!
//! The aggregate report is deterministic: rerun with any `--workers`
//! value and the printed JSON is byte-identical.

use foam::FoamConfig;
use foam_ensemble::{kill_sst_after, run_ensemble, EnsembleSpec};

fn flag_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let members: usize = flag_or("--members", 4);
    let workers: usize = flag_or("--workers", 2);
    let days: f64 = flag_or("--days", 5.0);
    let fault_member: i64 = flag_or("--fault-plan", -1);

    // Four seeds, one trajectory each; per-member checkpoints land
    // under the output directory so a killed member can resume.
    let mut spec = EnsembleSpec::seed_sweep(FoamConfig::tiny(42), days, members);
    spec.workers = workers;
    spec.output_dir =
        Some(std::env::temp_dir().join(format!("foam-example-ensemble-{}", std::process::id())));
    if fault_member >= 0 {
        let m = fault_member as usize;
        assert!(m < members, "--fault-plan member out of range");
        let hits = ((days * 4.0) as u64 / 2).max(1);
        println!("injecting a fault: member {m} will lose its SST exchange mid-run\n");
        spec.members[m].fault_plan = Some(kill_sst_after(42, hits));
    }

    println!("running {members} members on {workers} workers, {days} simulated days each...\n");
    let out = run_ensemble(&spec).expect("valid ensemble spec");

    for rec in &out.members {
        match rec.output() {
            Some(o) => println!(
                "member {:>2} (seed {:>3}): final mean SST {:7.3} °C, ice {:.1} %, retries {}",
                rec.spec.id,
                rec.spec.seed,
                o.mean_sst_series.last().copied().unwrap_or(f64::NAN),
                100.0 * o.ice_fraction,
                rec.retries
            ),
            None => println!(
                "member {:>2} (seed {:>3}): FAILED after {} retries",
                rec.spec.id, rec.spec.seed, rec.retries
            ),
        }
    }
    println!(
        "\n{} of {} members completed in {:.1} s wall-clock",
        out.report.n_ok, members, out.wall_seconds
    );

    println!("\n{} aggregate report:", foam_ensemble::SCHEMA);
    println!("{}", out.report.to_json().to_string_pretty());
}
