//! Run a declarative scenario file end to end: parse → validate →
//! lower → integrate → report.
//!
//! ```sh
//! cargo run --release -p foam-examples --bin scenario -- scenarios/co2-ramp-1pct.toml
//! cargo run --release -p foam-examples --bin scenario -- scenarios/solar-sweep.toml
//! cargo run --release -p foam-examples --bin scenario -- scenarios/control.toml --days 10
//! cargo run --release -p foam-examples --bin scenario -- scenarios/pinatubo.toml --check
//! ```
//!
//! `--check` stops after parse → validate → lower: it proves the file
//! is a runnable experiment (config and ensemble both construct and
//! pass validation) and prints its content digest, without spending
//! any model time. CI's `scenario-smoke` job runs it over the whole
//! library.
//!
//! A scenario with a `[sweep]` section expands to an ensemble (one
//! member per swept value); anything else is a single forced run. The
//! printed report is deterministic — the same scenario file always
//! yields the same bytes above the timing line — which is exactly what
//! the golden-regression tests pin.

use foam::run_coupled;
use foam_scenario::{report, Scenario};
use foam_stats::ascii::sparkline;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut days_override = None;
    let mut check_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--days" => {
                days_override = args.get(i + 1).and_then(|s| s.parse::<f64>().ok());
                i += 2;
            }
            "--check" => {
                check_only = true;
                i += 1;
            }
            other => {
                path = Some(other.to_string());
                i += 1;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: scenario <file.toml> [--days N] [--check]");
        std::process::exit(2);
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    // Parse + validate. Scenario errors carry source spans; print them
    // the way a compiler would.
    let mut sc = match Scenario::parse(&src) {
        Ok(sc) => sc,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    };
    if let Some(days) = days_override {
        sc.days = days;
    }
    let digest = sc.content_digest().unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    println!("scenario {:?} — {}", sc.name, sc.description);
    println!("content digest: {digest}");

    if check_only {
        // Prove the whole lowering pipeline without model time: the
        // config must construct and validate, and so must the
        // ensemble when a sweep is declared.
        let cfg = sc.config().unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        });
        drop(cfg);
        match sc.ensemble() {
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
            Ok(Some(spec)) => println!(
                "ok: lowers to a {}-member ensemble over {} days",
                spec.members.len(),
                sc.days
            ),
            Ok(None) => println!("ok: lowers to a single forced run over {} days", sc.days),
        }
        return;
    }

    match sc.ensemble() {
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
        Ok(Some(spec)) => {
            let sweep = sc.sweep.as_ref().expect("ensemble implies sweep");
            println!(
                "sweep over {} — {} members × {} days, {} workers",
                sweep.axis,
                spec.members.len(),
                sc.days,
                spec.workers
            );
            let out = foam_ensemble::run_ensemble(&spec).unwrap_or_else(|e| {
                eprintln!("ensemble failed: {e}");
                std::process::exit(1);
            });
            print!("{}", report::sweep_report(&sc, &out));
            println!("wall: {:.1}s", out.wall_seconds);
        }
        Ok(None) => {
            let cfg = sc.config().unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            });
            println!("integrating {} simulated days…", sc.days);
            let out = run_coupled(&cfg, sc.days);
            print!("{}", report::run_report(&sc, &out));
            println!(
                "mean SST trace: {}",
                sparkline(&out.mean_sst_series, 72.min(out.mean_sst_series.len()))
            );
            println!(
                "wall: {:.1}s ({:.0}× real time)",
                out.wall_seconds, out.model_speedup
            );
        }
    }
}
