//! The closed hydrological cycle: rain falls on land, fills the 15-cm
//! buckets, overflows into the rivers, and arrives in the ocean as
//! freshwater point sources at the mouths — the loop FOAM closes "to
//! avoid long-term ocean salinity drift".
//!
//! ```sh
//! cargo run --release -p foam-examples --bin hydrology_cycle [days]
//! ```

use foam_grid::{AtmGrid, Field2, World};
use foam_land::hydrology::Bucket;
use foam_land::river::RiverModel;
use foam_stats::ascii::render_map;

fn main() {
    let days: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);

    let world = World::earthlike();
    let grid = AtmGrid::r15();
    let land = world.atm_land_mask(&grid);
    let rivers = RiverModel::build(&grid, &land);
    let mut river_state = rivers.init_state();
    let mut buckets: Vec<Bucket> = vec![Bucket::default(); grid.len()];

    // An idealized precipitation climatology: ITCZ + midlatitude storm
    // tracks, constant in time.
    let precip: Vec<f64> = (0..grid.len())
        .map(|k| {
            let lat = grid.lats[k / grid.nlon].to_degrees();
            let itcz = 8.0e-5 * (-(lat * lat) / 200.0_f64).exp();
            let storms = 4.0e-5 * (-((lat.abs() - 45.0) / 15.0_f64).powi(2)).exp();
            itcz + storms
        })
        .collect();
    let evap = 2.0e-5; // uniform land evaporation

    let dt = 86_400.0;
    let mut total_rain = 0.0;
    let mut total_discharge = 0.0;
    let mut mouth_acc = Field2::zeros(grid.nlon, grid.nlat);
    for day in 0..days {
        let mut runoff = vec![0.0; grid.len()];
        for k in 0..grid.len() {
            if land[k] {
                let out = buckets[k].step(precip[k], evap, false, 285.0, dt);
                runoff[k] = out.runoff;
                total_rain +=
                    precip[k] * dt / 1000.0 * grid.cell_area(k % grid.nlon, k / grid.nlon);
            }
        }
        let mouths = rivers.step(&mut river_state, &runoff, dt);
        for j in 0..grid.nlat {
            for i in 0..grid.nlon {
                let v = mouths.get(i, j) * grid.cell_area(i, j) * dt / 1000.0;
                total_discharge += v;
                mouth_acc[(i, j)] += v;
            }
        }
        if (day + 1) % 30 == 0 {
            println!(
                "day {:>4}: river storage {:.1} km³, cumulative discharge {:.1} km³",
                day + 1,
                rivers.total_storage(&river_state) / 1.0e9,
                total_discharge / 1.0e9
            );
        }
    }

    println!();
    println!(
        "cumulative land rain {:.1} km³ → ocean discharge {:.1} km³ \
         (+ {:.1} km³ in soil/ rivers en route)",
        total_rain / 1.0e9,
        total_discharge / 1.0e9,
        rivers.total_storage(&river_state) / 1.0e9
    );
    println!();
    println!(
        "{}",
        render_map(
            &mouth_acc,
            None,
            "cumulative river discharge by mouth (m³; blank = none)"
        )
    );
    // Where are the five biggest rivers?
    let mut mouths: Vec<(f64, usize)> = (0..grid.len())
        .map(|k| (mouth_acc.as_slice()[k], k))
        .collect();
    mouths.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    println!("largest river mouths (lon, lat, km³):");
    for (v, k) in mouths.iter().take(5) {
        println!(
            "  ({:>6.1}°, {:>5.1}°)  {:>8.1}",
            grid.lons[k % grid.nlon].to_degrees(),
            grid.lats[k / grid.nlon].to_degrees(),
            v / 1.0e9
        );
    }
}
