//! Offline stand-in for the subset of `parking_lot` that FOAM-RS uses:
//! a non-poisoning `Mutex` over `std::sync::Mutex`. Poisoning is
//! deliberately swallowed (parking_lot semantics): a rank that panicked
//! has already recorded its failure; later readers still get the data.

use std::sync;

pub struct Mutex<T>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Lock, ignoring poisoning (like parking_lot, which has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn lock_survives_a_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
