//! Offline stand-in for the subset of `criterion` that FOAM-RS benches
//! use. It runs each benchmark for a fixed number of timed samples and
//! prints a mean ± spread line, with no statistical machinery and no
//! HTML reports. Good enough to (a) keep the benches compiling and
//! runnable offline and (b) give a coarse per-change timing signal.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped; accepted for API compatibility, all
/// variants behave the same here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of each sample, seconds.
    results: Vec<f64>,
}

impl Bencher {
    /// Time `f` repeatedly, recording `samples` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: aim for >= ~1 ms per sample so short closures
        // aren't dominated by timer resolution.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = (1e-3 / once).ceil().clamp(1.0, 1e6) as usize;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.results.push(t.elapsed().as_secs_f64() / iters as f64);
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.results.push(t.elapsed().as_secs_f64());
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        results: Vec::new(),
    };
    f(&mut b);
    if b.results.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mean = b.results.iter().sum::<f64>() / b.results.len() as f64;
    let lo = b.results.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = b.results.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{name:<40} {:>12}  [{} .. {}]  ({} samples)",
        fmt_time(mean),
        fmt_time(lo),
        fmt_time(hi),
        b.results.len()
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.into(), self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("--- group: {name} ---");
        BenchmarkGroup {
            parent: self,
            prefix: name,
        }
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.prefix, name.into()),
            self.parent.sample_size,
            &mut f,
        );
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(1);
        self
    }

    pub fn finish(self) {}
}

/// Mirror of criterion's group-definition macro: both the plain list
/// form and the `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran >= 3);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
    }
}
