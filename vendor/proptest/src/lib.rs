//! Offline stand-in for the subset of `proptest` that FOAM-RS tests use.
//!
//! The build environment has no crates.io access, so this crate provides
//! the same *testing contract* with a much smaller engine: strategies
//! generate deterministic pseudo-random inputs (seeded from the test
//! name, so failures reproduce run-to-run), `proptest!` expands each
//! property into an ordinary `#[test]` that executes N generated cases,
//! and `prop_assert*` report the failing case before panicking. There is
//! no shrinking: the printed case is the raw failing input.

use std::ops::Range;

// ---------------------------------------------------------------------
// Deterministic generator
// ---------------------------------------------------------------------

/// SplitMix64 stream used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed from a test name so each property gets its own stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform usize in [lo, hi).
    pub fn next_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values (matching proptest's combinator).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        debug_assert!(self.start < self.end);
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as i64
    }
}

impl Strategy for Range<u32> {
    type Value = u32;

    fn generate(&self, rng: &mut TestRng) -> u32 {
        debug_assert!(self.start < self.end);
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as u32
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.next_range_usize(self.start, self.end)
    }
}

/// Inclusive ranges, e.g. `1..=8usize`.
impl Strategy for std::ops::RangeInclusive<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.next_range_usize(*self.start(), *self.end() + 1)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// `any::<T>()` support for the types FOAM's tests draw.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for f64 {
    /// Finite f64 spread over a wide but usable magnitude range.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mag = (rng.next_f64() * 600.0) - 300.0; // exponent in [-300, 300)
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * rng.next_f64() * 10f64.powf(mag / 10.0)
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Constant strategy: always yields clones of one value (proptest's
/// `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: a fixed size or a half-open
    /// range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(strategy, len)` — a Vec whose length is
    /// drawn from `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.next_range_usize(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------

/// Runner configuration; only `cases` is honored by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Define property tests. Supports the forms FOAM uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn prop(x in 0.0f64..1.0, v in prop::collection::vec(any::<bool>(), 3)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $( $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let __case_desc = format!(
                        concat!("case ", "{}", $(" ", stringify!($arg), " = {:?}",)*),
                        __case $(, &$arg)*
                    );
                    let __guard = $crate::CaseGuard::new(__case_desc);
                    $body
                    __guard.disarm();
                }
            }
        )*
    };
}

/// Prints the generated inputs when a property body panics, standing in
/// for proptest's failure persistence (there is no shrinking).
pub struct CaseGuard {
    desc: String,
    armed: bool,
}

impl CaseGuard {
    pub fn new(desc: String) -> Self {
        CaseGuard { desc, armed: true }
    }

    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed {
            eprintln!("proptest(stand-in) failing {}", self.desc);
        }
    }
}

/// Assert inside a property, reporting the failing case via panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };

    /// Mirror of `proptest::prelude::prop` — the crate under a short
    /// alias so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let x = Strategy::generate(&(2.0f64..3.0), &mut rng);
            assert!((2.0..3.0).contains(&x));
            let n = Strategy::generate(&(1usize..5), &mut rng);
            assert!((1..5).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_honors_size_range() {
        let mut rng = TestRng::from_seed(2);
        let s = collection::vec(0.0f64..1.0, 3..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 0.0f64..1.0, flips in prop::collection::vec(any::<bool>(), 1..4)) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(!flips.is_empty() && flips.len() < 4);
        }

        #[test]
        fn prop_map_composes(y in (0.0f64..1.0).prop_map(|v| v * 10.0)) {
            prop_assert!((0.0..10.0).contains(&y));
        }
    }
}
