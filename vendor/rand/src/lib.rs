//! Offline stand-in for the subset of `rand` 0.9 that FOAM-RS uses:
//! `StdRng::seed_from_u64` plus `Rng::random::<T>()` for the primitive
//! types the model draws. The generator is SplitMix64 — statistically
//! fine for initial-condition perturbations, fully deterministic per
//! seed, and dependency-free.

/// Types that can be drawn from the standard (uniform) distribution.
pub trait StandardSample: Sized {
    fn sample_from(words: &mut dyn FnMut() -> u64) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in [0, 1) with 53 random bits, as `rand` produces.
    fn sample_from(words: &mut dyn FnMut() -> u64) -> Self {
        (words() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn sample_from(words: &mut dyn FnMut() -> u64) -> Self {
        (words() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl StandardSample for bool {
    fn sample_from(words: &mut dyn FnMut() -> u64) -> Self {
        words() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_from(words: &mut dyn FnMut() -> u64) -> Self {
        words()
    }
}

impl StandardSample for u32 {
    fn sample_from(words: &mut dyn FnMut() -> u64) -> Self {
        (words() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn sample_from(words: &mut dyn FnMut() -> u64) -> Self {
        words() as usize
    }
}

/// The parts of `rand::Rng` the codebase calls.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Draw a value from the standard distribution (uniform over the
    /// type's natural range; [0, 1) for floats).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_from(&mut || self.next_u64())
    }

    /// Uniform f64 in [low, high).
    fn random_range(&mut self, range: std::ops::Range<f64>) -> f64 {
        range.start + (range.end - range.start) * self.random::<f64>()
    }
}

/// The parts of `rand::SeedableRng` the codebase calls.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Not the real
    /// `StdRng` algorithm, but FOAM only needs reproducible-per-seed
    /// perturbations, not a specific stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zeros fixed point of a raw seed.
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn floats_live_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(42);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        // The stream actually covers the interval.
        assert!(lo < 0.01 && hi > 0.99);
    }
}
