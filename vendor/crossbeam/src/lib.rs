//! Offline stand-in for the subset of `crossbeam` that FOAM-RS uses.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny API surface it needs: `crossbeam::channel`'s
//! unbounded MPSC channel, implemented over `std::sync::mpsc`. The
//! semantics foam-mpi relies on — unbounded buffering, FIFO delivery
//! per sender, cloneable senders, blocking/timeout/non-blocking
//! receives — are all provided by the standard library channel.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    /// Carries the unsent value back to the caller like crossbeam does.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Sending half of an unbounded channel. Cloneable and `Send`.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Block until a message arrives, the timeout elapses, or every
        /// sender is dropped.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_orders() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn timeout_fires_when_empty() {
            let (tx, rx) = unbounded::<u8>();
            let r = rx.recv_timeout(Duration::from_millis(5));
            assert_eq!(r, Err(RecvTimeoutError::Timeout));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
